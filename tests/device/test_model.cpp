#include <gtest/gtest.h>

#include "device/model.hpp"

namespace hplx::device {
namespace {

TEST(DeviceModel, Nb512HitsPaperDgemmRate) {
  // §IV.A: "At NB = 512 the DGEMMs ... achieve 49 TFLOPS ... on each
  // MI250X", i.e. 24.5 per GCD.
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_NEAR(m.gemm_tflops(512), 24.5, 0.3);
}

TEST(DeviceModel, RampIsMonotone) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  double prev = 0.0;
  for (long k : {16L, 32L, 64L, 128L, 256L, 512L, 1024L, 4096L}) {
    const double r = m.gemm_tflops(k);
    EXPECT_GT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev, m.gemm_peak_tflops);
}

TEST(DeviceModel, SmallNbFarFromPeak) {
  // The paper's rationale for NB >= 512: small blocks starve the MFMA
  // units. At NB = 64 the model must sit well below the plateau.
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_LT(m.gemm_tflops(64), 0.75 * m.gemm_tflops(512));
}

TEST(DeviceModel, GemmSecondsScalesWithWork) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  // Net of the kernel-launch floor, doubling m doubles the time.
  const double t1 = m.gemm_seconds(1000, 1000, 512) - m.kernel_latency_s;
  const double t2 = m.gemm_seconds(2000, 1000, 512) - m.kernel_latency_s;
  EXPECT_GT(t2, 1.99 * t1);
  EXPECT_LT(t2, 2.01 * t1);
}

TEST(DeviceModel, GemmLatencyFloors) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_GE(m.gemm_seconds(1, 1, 1), m.kernel_latency_s);
}

TEST(DeviceModel, SkinnyGemmPenalized) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  // Same FLOPs, but one has a starved m dimension.
  const double fat = m.gemm_seconds(512, 512, 512);
  const double skinny = m.gemm_seconds(16, 512 * 32, 512);
  EXPECT_GT(skinny, fat);
}

TEST(DeviceModel, TransfersScaleWithBytes) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  const double t1 = m.hcopy_seconds(1 << 20) - m.h2d_latency_s;
  const double t4 = m.hcopy_seconds(4 << 20) - m.h2d_latency_s;
  EXPECT_GT(t4, 3.9 * t1);
  EXPECT_GT(m.dmove_seconds(1 << 20), 0.0);
  // HBM is far faster than the host link.
  EXPECT_LT(m.dmove_seconds(1 << 26), m.hcopy_seconds(1 << 26));
}

TEST(DeviceModel, RowswapChargesStridedBandwidth) {
  // Two touches per element at the strided fraction of HBM bandwidth:
  // strictly more expensive than a streaming move of the same bytes.
  const DeviceModel m = DeviceModel::mi250x_gcd();
  const double t = m.rowswap_seconds(512, 1000);
  const std::size_t bytes = 2ul * 512 * 1000 * sizeof(double);
  EXPECT_GT(t, m.dmove_seconds(bytes));
  EXPECT_NEAR(t - m.kernel_latency_s,
              static_cast<double>(bytes) /
                  (m.rowswap_bw_factor * m.hbm_bw_gbs * 1e9),
              1e-9);
}

TEST(DeviceModel, ZeroWorkIsFree) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_DOUBLE_EQ(m.gemm_seconds(0, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(m.rowswap_seconds(5, 0), 0.0);
}

}  // namespace
}  // namespace hplx::device
