#include <gtest/gtest.h>

#include "device/model.hpp"

namespace hplx::device {
namespace {

TEST(DeviceModel, Nb512HitsPaperDgemmRate) {
  // §IV.A: "At NB = 512 the DGEMMs ... achieve 49 TFLOPS ... on each
  // MI250X", i.e. 24.5 per GCD.
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_NEAR(m.gemm_tflops(512), 24.5, 0.3);
}

TEST(DeviceModel, RampIsMonotone) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  double prev = 0.0;
  for (long k : {16L, 32L, 64L, 128L, 256L, 512L, 1024L, 4096L}) {
    const double r = m.gemm_tflops(k);
    EXPECT_GT(r, prev);
    prev = r;
  }
  EXPECT_LT(prev, m.gemm_peak_tflops);
}

TEST(DeviceModel, SmallNbFarFromPeak) {
  // The paper's rationale for NB >= 512: small blocks starve the MFMA
  // units. At NB = 64 the model must sit well below the plateau.
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_LT(m.gemm_tflops(64), 0.75 * m.gemm_tflops(512));
}

TEST(DeviceModel, GemmSecondsScalesWithWork) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  // Net of the kernel-launch floor, doubling m doubles the time.
  const double t1 = m.gemm_seconds(1000, 1000, 512) - m.kernel_latency_s;
  const double t2 = m.gemm_seconds(2000, 1000, 512) - m.kernel_latency_s;
  EXPECT_GT(t2, 1.99 * t1);
  EXPECT_LT(t2, 2.01 * t1);
}

TEST(DeviceModel, GemmLatencyFloors) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_GE(m.gemm_seconds(1, 1, 1), m.kernel_latency_s);
}

TEST(DeviceModel, SkinnyGemmPenalized) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  // Same FLOPs, but one has a starved m dimension.
  const double fat = m.gemm_seconds(512, 512, 512);
  const double skinny = m.gemm_seconds(16, 512 * 32, 512);
  EXPECT_GT(skinny, fat);
}

TEST(DeviceModel, TransfersScaleWithBytes) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  const double t1 = m.hcopy_seconds(1 << 20) - m.h2d_latency_s;
  const double t4 = m.hcopy_seconds(4 << 20) - m.h2d_latency_s;
  EXPECT_GT(t4, 3.9 * t1);
  EXPECT_GT(m.dmove_seconds(1 << 20), 0.0);
  // HBM is far faster than the host link.
  EXPECT_LT(m.dmove_seconds(1 << 26), m.hcopy_seconds(1 << 26));
}

TEST(DeviceModel, RowswapChargesStridedBandwidth) {
  // Two touches per element at the strided fraction of HBM bandwidth:
  // strictly more expensive than a streaming move of the same bytes.
  const DeviceModel m = DeviceModel::mi250x_gcd();
  const double t = m.rowswap_seconds(512, 1000);
  const std::size_t bytes = 2ul * 512 * 1000 * sizeof(double);
  EXPECT_GT(t, m.dmove_seconds(bytes));
  EXPECT_NEAR(t - m.kernel_latency_s,
              static_cast<double>(bytes) /
                  (m.rowswap_bw_factor * m.hbm_bw_gbs * 1e9),
              1e-9);
}

TEST(DeviceModel, ZeroWorkIsFree) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_DOUBLE_EQ(m.gemm_seconds(0, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(m.rowswap_seconds(5, 0), 0.0);
}

// ----------------------------------------------- per-precision throughput

TEST(ThroughputCurve, ClampsBeyondLastAnchor) {
  // The fix under test: a rate is never extrapolated past the last
  // calibration point. Before the clamp, a query beyond the final anchor
  // continued the last segment's slope and credited rates the hardware was
  // never measured at.
  const ThroughputCurve c = {3, {64, 256, 1024}, {10.0, 30.0, 40.0}};
  EXPECT_DOUBLE_EQ(c.at(1024.0), 40.0);   // exactly at the boundary
  EXPECT_DOUBLE_EQ(c.at(1025.0), 40.0);   // one past
  EXPECT_DOUBLE_EQ(c.at(1e9), 40.0);      // far past
}

TEST(ThroughputCurve, RampsThroughOriginBelowFirstAnchor) {
  const ThroughputCurve c = {3, {64, 256, 1024}, {10.0, 30.0, 40.0}};
  EXPECT_DOUBLE_EQ(c.at(32.0), 5.0);  // half the first anchor: half its rate
  EXPECT_DOUBLE_EQ(c.at(64.0), 10.0);
  EXPECT_DOUBLE_EQ(c.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.at(-5.0), 0.0);
}

TEST(ThroughputCurve, InterpolatesBetweenAnchors) {
  const ThroughputCurve c = {3, {64, 256, 1024}, {10.0, 30.0, 40.0}};
  EXPECT_DOUBLE_EQ(c.at(160.0), 20.0);  // midpoint of [64, 256]
  EXPECT_DOUBLE_EQ(c.at(640.0), 35.0);  // midpoint of [256, 1024]
}

TEST(ThroughputCurve, InvalidCurvesReportZero) {
  // Non-increasing k.
  const ThroughputCurve bad_order = {2, {256, 64}, {10.0, 20.0}};
  EXPECT_FALSE(bad_order.valid());
  EXPECT_DOUBLE_EQ(bad_order.at(128.0), 0.0);
  // Non-positive rate.
  const ThroughputCurve bad_rate = {2, {64, 256}, {10.0, 0.0}};
  EXPECT_FALSE(bad_rate.valid());
  EXPECT_DOUBLE_EQ(bad_rate.at(128.0), 0.0);
  // Empty.
  const ThroughputCurve empty = {};
  EXPECT_FALSE(empty.valid());
  EXPECT_DOUBLE_EQ(empty.at(128.0), 0.0);
}

TEST(DeviceModel, DefaultCurvesAreValidAndOrdered) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_TRUE(m.fp32_curve.valid());
  EXPECT_TRUE(m.fp16_curve.valid());
  // fp16 > fp32 > fp64 at every blocking — the ordering that makes the
  // simulated MxP speedups monotone in precision.
  for (long k : {16L, 32L, 64L, 128L, 256L, 512L, 1024L, 2048L, 8192L}) {
    EXPECT_GT(m.gemm_tflops(k, Precision::FP16),
              m.gemm_tflops(k, Precision::FP32))
        << "k=" << k;
    EXPECT_GT(m.gemm_tflops(k, Precision::FP32),
              m.gemm_tflops(k, Precision::FP64))
        << "k=" << k;
  }
}

TEST(DeviceModel, LowPrecisionGemmIsFaster) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  const double t64 = m.gemm_seconds(2048, 2048, 256, Precision::FP64);
  const double t32 = m.gemm_seconds(2048, 2048, 256, Precision::FP32);
  const double t16 = m.gemm_seconds(2048, 2048, 256, Precision::FP16);
  EXPECT_LT(t32, t64);
  EXPECT_LT(t16, t32);
}

TEST(DeviceModel, PrecisionForElemMapsBytes) {
  DeviceModel m = DeviceModel::mi250x_gcd();
  EXPECT_EQ(m.precision_for_elem(sizeof(double)), Precision::FP64);
  EXPECT_EQ(m.precision_for_elem(sizeof(float)), Precision::FP32);
  m.low_prec = Precision::FP16;  // the mxp16-sim billing switch
  EXPECT_EQ(m.precision_for_elem(sizeof(float)), Precision::FP16);
  EXPECT_EQ(m.precision_for_elem(sizeof(double)), Precision::FP64);
}

TEST(DeviceModel, FloatRowswapChargesHalfTheBytes) {
  const DeviceModel m = DeviceModel::mi250x_gcd();
  const double t64 = m.rowswap_seconds(64, 1000);
  const double t32 = m.rowswap_seconds(64, 1000, sizeof(float));
  EXPECT_NEAR(t32 - m.kernel_latency_s, (t64 - m.kernel_latency_s) / 2.0,
              1e-12);
}

}  // namespace
}  // namespace hplx::device
