#include <gtest/gtest.h>

#include "device/device.hpp"
#include "util/error.hpp"

namespace hplx::device {
namespace {

TEST(Device, TracksAllocations) {
  Device dev("gcd0", 1024 * sizeof(double));
  EXPECT_EQ(dev.hbm_used(), 0u);
  {
    Buffer b = dev.alloc(100);
    EXPECT_EQ(dev.hbm_used(), 100 * sizeof(double));
    EXPECT_EQ(b.count(), 100u);
    EXPECT_NE(b.data(), nullptr);
  }
  EXPECT_EQ(dev.hbm_used(), 0u);
}

TEST(Device, OutOfMemoryThrows) {
  Device dev("gcd0", 10 * sizeof(double));
  Buffer ok = dev.alloc(8);
  EXPECT_THROW(dev.alloc(3), Error);
  // The failed allocation must not leak accounting.
  EXPECT_EQ(dev.hbm_used(), 8 * sizeof(double));
}

TEST(Device, ExactFitAllowed) {
  Device dev("gcd0", 16 * sizeof(double));
  Buffer b = dev.alloc(16);
  EXPECT_EQ(dev.hbm_used(), dev.hbm_capacity());
}

TEST(Buffer, MoveTransfersOwnership) {
  Device dev("gcd0", 1 << 20);
  Buffer a = dev.alloc(10);
  double* p = a.data();
  Buffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_FALSE(a.allocated());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dev.hbm_used(), 10 * sizeof(double));
}

TEST(Buffer, MoveAssignReleasesTarget) {
  Device dev("gcd0", 1 << 20);
  Buffer a = dev.alloc(10);
  Buffer b = dev.alloc(20);
  EXPECT_EQ(dev.hbm_used(), 30 * sizeof(double));
  b = std::move(a);
  EXPECT_EQ(dev.hbm_used(), 10 * sizeof(double));
  EXPECT_EQ(b.count(), 10u);
}

TEST(Buffer, DataIsWritable) {
  Device dev("gcd0", 1 << 20);
  Buffer b = dev.alloc(4);
  for (std::size_t i = 0; i < 4; ++i) b.data()[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(b.data()[3], 3.0);
}

}  // namespace
}  // namespace hplx::device
