/// PoolAllocator unit tests: size-class mapping, alignment, pointer
/// reuse, borrow-from-larger, oversize/passthrough/cache-limit paths,
/// stats accounting, the ArenaBufT scratch wrapper, a multithreaded
/// acquire/release stress (the comm adapter releases buffers from
/// receiver threads), and the hazard-tracker integration that makes
/// use-after-free and leak detection see *pooled* reuse.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "device/alloc.hpp"
#include "device/hazard.hpp"

namespace hplx::device {
namespace {

using Kind = HazardTracker::Kind;

constexpr std::size_t kMin = std::size_t(1) << PoolAllocator::kMinClassLog;
constexpr std::size_t kMax = std::size_t(1) << PoolAllocator::kMaxClassLog;

// ------------------------------------------------------------ size classes

TEST(AllocClass, EveryRequestFitsItsClass) {
  for (std::size_t b : {std::size_t(0), std::size_t(1), kMin - 1, kMin,
                        kMin + 1, std::size_t(4095), std::size_t(4096),
                        std::size_t(4097), kMax - 1, kMax}) {
    const int cls = PoolAllocator::class_of(b);
    ASSERT_LE(cls, PoolAllocator::kMaxClassLog) << b;
    EXPECT_GE(PoolAllocator::class_capacity(cls), b) << b;
  }
}

TEST(AllocClass, ClassIsMinimal) {
  for (std::size_t b : {kMin + 1, std::size_t(1000), std::size_t(100000),
                        kMax / 2 + 1}) {
    const int cls = PoolAllocator::class_of(b);
    EXPECT_LT(PoolAllocator::class_capacity(cls - 1), b) << b;
  }
}

TEST(AllocClass, BoundsAndOversize) {
  EXPECT_EQ(PoolAllocator::class_of(0), PoolAllocator::kMinClassLog);
  EXPECT_EQ(PoolAllocator::class_of(1), PoolAllocator::kMinClassLog);
  EXPECT_EQ(PoolAllocator::class_of(kMin), PoolAllocator::kMinClassLog);
  EXPECT_EQ(PoolAllocator::class_of(kMax), PoolAllocator::kMaxClassLog);
  EXPECT_EQ(PoolAllocator::class_of(kMax + 1),
            PoolAllocator::kMaxClassLog + 1);
}

// --------------------------------------------------------------- leasing

TEST(Alloc, AlignmentOnEveryPath) {
  PoolAllocator pool("t");
  for (std::size_t b : {std::size_t(0), std::size_t(1), std::size_t(300),
                        std::size_t(1 << 20), kMax + 1 /* oversize */}) {
    PoolAllocator::Block blk = pool.acquire(b);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(blk.data) %
                  PoolAllocator::kAlignment,
              0u)
        << b;
    EXPECT_NE(blk.data, nullptr) << b;
    pool.release(blk);
  }
}

TEST(Alloc, ReleasedBlockIsReusedSamePointer) {
  PoolAllocator pool("t");
  PoolAllocator::Block a = pool.acquire(1024);
  std::byte* p = a.data;
  pool.release(a);
  PoolAllocator::Block b = pool.acquire(900);  // same class (1 KiB)
  EXPECT_EQ(b.data, p);
  pool.release(b);
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.upstream_allocs, 1u);
}

TEST(Alloc, BorrowServesSmallerClassAndReturnsToTrueClass) {
  PoolAllocator pool("t");
  PoolAllocator::Block big = pool.acquire(8192);  // class 13
  pool.release(big);
  // Class 12 is empty: the cached 8 KiB block is borrowed instead of
  // touching the system allocator.
  PoolAllocator::Block small = pool.acquire(4096);
  EXPECT_EQ(small.capacity, 8192u);
  EXPECT_EQ(small.cls, 13);
  {
    const auto s = pool.stats();
    EXPECT_EQ(s.borrows, 1u);
    EXPECT_EQ(s.upstream_allocs, 1u);
  }
  pool.release(small);  // back on the 8 KiB freelist, not 4 KiB
  PoolAllocator::Block again = pool.acquire(8192);
  EXPECT_EQ(again.capacity, 8192u);
  EXPECT_EQ(pool.stats().upstream_allocs, 1u);
  pool.release(again);
}

TEST(Alloc, BorrowDistanceIsCapped) {
  PoolAllocator pool("t");
  // Park one block kMaxBorrowDistance + 1 classes above the request: a
  // 256 B lease must not pin it.
  const int far = PoolAllocator::kMinClassLog +
                  PoolAllocator::kMaxBorrowDistance + 1;
  PoolAllocator::Block big =
      pool.acquire(PoolAllocator::class_capacity(far));
  pool.release(big);
  PoolAllocator::Block small = pool.acquire(64);
  EXPECT_EQ(small.capacity, kMin);
  EXPECT_EQ(pool.stats().borrows, 0u);
  EXPECT_EQ(pool.stats().upstream_allocs, 2u);
  pool.release(small);
}

TEST(Alloc, OversizeBypassesFreelists) {
  PoolAllocator pool("t");
  PoolAllocator::Block b = pool.acquire(kMax + 1);
  EXPECT_EQ(b.cls, -1);
  EXPECT_EQ(b.capacity, kMax + 1);
  pool.release(b);
  const auto s = pool.stats();
  EXPECT_EQ(s.oversize, 1u);
  EXPECT_EQ(s.cached_bytes, 0u);  // freed upstream, never parked
}

TEST(Alloc, LoweredMaxClassShrinksOversizeThreshold) {
  // The comm adapter's historical 16 MiB cutoff.
  PoolAllocator pool("t", /*passthrough=*/false, /*max_class_log=*/24);
  PoolAllocator::Block b = pool.acquire((16u << 20) + 1);
  EXPECT_EQ(b.cls, -1);
  pool.release(b);
  EXPECT_EQ(pool.stats().oversize, 1u);
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
}

TEST(Alloc, PassthroughNeverCaches) {
  PoolAllocator pool("t", /*passthrough=*/true);
  for (int i = 0; i < 3; ++i) {
    PoolAllocator::Block b = pool.acquire(1024);
    EXPECT_EQ(b.cls, -1);
    pool.release(b);
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.upstream_allocs, 3u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.cached_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.0);
}

TEST(Alloc, CacheLimitFreesBeyondCap) {
  PoolAllocator pool("t");
  pool.set_cache_limit(1024);
  PoolAllocator::Block a = pool.acquire(1024);
  PoolAllocator::Block b = pool.acquire(1024);
  pool.release(a);  // parked: cache now 1024
  pool.release(b);  // would exceed the cap: freed upstream
  const auto s = pool.stats();
  EXPECT_EQ(s.cached_bytes, 1024u);
}

TEST(Alloc, PrewarmStocksEveryClassBelowTheHighestUsed) {
  PoolAllocator pool("t");
  PoolAllocator::Block big = pool.acquire(std::size_t(1) << 16);  // class 16
  pool.release(big);
  pool.prewarm(2);
  // Every class from the minimum through 16 now holds two cached blocks:
  // a first-ever request in any of them is a hit, not a system call.
  const auto before = pool.stats().upstream_allocs;
  for (int c = PoolAllocator::kMinClassLog; c <= 16; ++c) {
    PoolAllocator::Block a = pool.acquire(PoolAllocator::class_capacity(c));
    PoolAllocator::Block b = pool.acquire(PoolAllocator::class_capacity(c));
    EXPECT_EQ(pool.stats().upstream_allocs, before) << c;
    pool.release(a);
    pool.release(b);
  }
  // Classes above the highest-used one are untouched.
  PoolAllocator::Block above = pool.acquire(std::size_t(1) << 17);
  EXPECT_EQ(pool.stats().upstream_allocs, before + 1);
  pool.release(above);
}

TEST(Alloc, PrewarmFloorStocksClassesNeverYetRequested) {
  PoolAllocator pool("t");
  // No acquires at all: the floor alone decides how far to stock.
  pool.prewarm(1, std::size_t(1) << 14);
  const auto before = pool.stats().upstream_allocs;
  for (int c = PoolAllocator::kMinClassLog; c <= 14; ++c) {
    PoolAllocator::Block b = pool.acquire(PoolAllocator::class_capacity(c));
    EXPECT_EQ(pool.stats().upstream_allocs, before) << c;
    pool.release(b);
  }
  // The floor is clamped to the pool's max class, never into oversize.
  PoolAllocator capped("t", /*passthrough=*/false, /*max_class_log=*/10);
  capped.prewarm(1, std::size_t(1) << 20);
  EXPECT_EQ(capped.stats().cached_bytes,
            (std::size_t(1) << 8) + (std::size_t(1) << 9) +
                (std::size_t(1) << 10));
}

TEST(Alloc, PrewarmRespectsPassthroughAndCacheCap) {
  PoolAllocator ablated("t", /*passthrough=*/true);
  PoolAllocator::Block b = ablated.acquire(4096);
  ablated.release(b);
  ablated.prewarm(4);
  EXPECT_EQ(ablated.stats().cached_bytes, 0u);

  PoolAllocator capped("t");
  capped.set_cache_limit(1024);
  PoolAllocator::Block c = capped.acquire(std::size_t(1) << 16);
  capped.release(c);  // 64 KiB exceeds the cap: freed upstream
  capped.prewarm(4);
  EXPECT_LE(capped.stats().cached_bytes, 1024u);
}

TEST(Alloc, TrimReturnsEverythingUpstream) {
  PoolAllocator pool("t");
  for (std::size_t b : {std::size_t(512), std::size_t(4096),
                        std::size_t(1 << 16)}) {
    PoolAllocator::Block blk = pool.acquire(b);
    pool.release(blk);
  }
  EXPECT_GT(pool.stats().cached_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().cached_bytes, 0u);
  // The inventory is gone: the next acquire is a fresh system allocation.
  const auto before = pool.stats().upstream_allocs;
  PoolAllocator::Block blk = pool.acquire(512);
  EXPECT_EQ(pool.stats().upstream_allocs, before + 1);
  pool.release(blk);
}

// ----------------------------------------------------------------- stats

TEST(AllocStats, HwmAndFragmentation) {
  PoolAllocator pool("t");
  PoolAllocator::Block b = pool.acquire(300);  // class 512: 212 B padding
  auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 1u);
  EXPECT_EQ(s.outstanding_bytes, 512u);
  EXPECT_EQ(s.padding_bytes, 212u);
  EXPECT_DOUBLE_EQ(s.fragmentation(), 212.0 / 512.0);
  EXPECT_GE(s.hwm_bytes, 512u);
  pool.release(b);
  s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.fragmentation(), 0.0);
  EXPECT_GE(s.hwm_bytes, 512u);  // high-water mark survives the release
}

TEST(AllocStats, PerClassRows) {
  PoolAllocator pool("t");
  PoolAllocator::Block a = pool.acquire(1000);   // class 1024
  PoolAllocator::Block b = pool.acquire(100000); // class 131072
  pool.release(a);
  pool.release(b);
  PoolAllocator::Block c = pool.acquire(1024);   // hit on class 1024
  pool.release(c);
  const auto rows = pool.class_stats();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].capacity, 1024u);
  EXPECT_EQ(rows[0].acquires, 2u);
  EXPECT_EQ(rows[0].hits, 1u);
  EXPECT_EQ(rows[0].hwm_bytes, 1024u);
  EXPECT_EQ(rows[1].capacity, 131072u);
  EXPECT_EQ(rows[1].acquires, 1u);
}

TEST(AllocStats, GlobalUpstreamCounterTracksOnlyFreshAllocations) {
  PoolAllocator pool("t");
  const std::uint64_t c0 = upstream_alloc_count();
  PoolAllocator::Block a = pool.acquire(2048);
  EXPECT_EQ(upstream_alloc_count(), c0 + 1);
  pool.release(a);
  PoolAllocator::Block b = pool.acquire(2048);  // freelist hit
  EXPECT_EQ(upstream_alloc_count(), c0 + 1);
  pool.release(b);
}

// -------------------------------------------------------------- ArenaBuf

TEST(ArenaBuf, AssignSemanticsMatchVector) {
  PoolAllocator pool("t");
  ArenaBufT<double> buf(pool);
  buf.assign(100, 3.5);
  ASSERT_EQ(buf.size(), 100u);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 3.5);
  buf.assign(10, -1.0);
  ASSERT_EQ(buf.size(), 10u);  // size tracks the last assign exactly
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], -1.0);
}

TEST(ArenaBuf, ShrinkKeepsLeaseGrowReleases) {
  PoolAllocator pool("t");
  ArenaBufT<float> buf(pool);
  buf.resize_discard(1000);
  float* p = buf.data();
  buf.resize_discard(10);  // within capacity: same storage, no pool call
  EXPECT_EQ(buf.data(), p);
  EXPECT_EQ(pool.stats().acquires, 1u);
  buf.resize_discard(100000);  // growth re-leases through the pool
  EXPECT_EQ(pool.stats().acquires, 2u);
  EXPECT_EQ(buf.size(), 100000u);
  buf.reset();
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(ArenaBuf, SteadyStateRegrowthIsAFreelistHit) {
  PoolAllocator pool("t");
  {
    ArenaBufT<double> warm(pool);
    warm.resize_discard(5000);
  }  // lease parked
  ArenaBufT<double> buf(pool);
  buf.resize_discard(100);
  buf.resize_discard(5000);  // grows into the parked block
  const auto s = pool.stats();
  EXPECT_EQ(s.upstream_allocs, 2u);  // only the two warmup allocations
  EXPECT_GE(s.hits + s.borrows, 1u);
}

TEST(ArenaBuf, BindAfterDefaultConstruction) {
  PoolAllocator pool("t");
  ArenaBufT<int> buf;
  EXPECT_FALSE(buf.bound());
  buf.bind(pool);
  EXPECT_TRUE(buf.bound());
  buf.assign(4, 7);
  EXPECT_EQ(buf[3], 7);
}

// ---------------------------------------------------------------- threads

TEST(AllocStress, ConcurrentAcquireReleaseStaysConsistent) {
  PoolAllocator pool("t");
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      std::vector<PoolAllocator::Block> held;
      for (int i = 0; i < kIters; ++i) {
        // Deterministic per-thread size mix spanning several classes.
        const std::size_t bytes =
            std::size_t(64) << ((t + i) % 10);
        held.push_back(pool.acquire(bytes));
        if (held.size() > 4) {
          pool.release(held.front());
          held.erase(held.begin());
        }
      }
      for (auto& b : held) pool.release(b);
    });
  }
  for (auto& th : threads) th.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.outstanding_bytes, 0u);
  EXPECT_EQ(s.acquires,
            static_cast<std::uint64_t>(kThreads) * kIters);
  // Reuse must dominate: the freelists serve the steady mix.
  EXPECT_GT(s.hit_rate(), 0.9);
}

// ---------------------------------------------------------------- hazard

TEST(AllocHazard, StaleTouchOfReleasedLeaseIsUseAfterFree) {
  HazardTracker hz("pool-hz");
  const int stream = hz.register_stream("s0");
  PoolAllocator pool("t");
  pool.set_hazard(&hz);

  PoolAllocator::Block b = pool.acquire(512);
  std::byte* stale = b.data;
  hz.on_enqueue(stream, "writer", nullptr, 0);
  pool.release(b);  // on_free: the range is now poisoned

  const MemSpan touch = span_write(stale, std::size_t(512));
  hz.on_enqueue(stream, "stale_writer", &touch, 1);
  EXPECT_EQ(hz.count_of(Kind::UseAfterFree), 1u);

  // Re-leasing the same block clears the freed marker: the next lessee's
  // writes are legitimate, pooled reuse notwithstanding.
  PoolAllocator::Block c = pool.acquire(512);
  ASSERT_EQ(c.data, stale);
  const MemSpan fresh = span_write(c.data, std::size_t(512));
  hz.on_enqueue(stream, "fresh_writer", &fresh, 1);
  EXPECT_EQ(hz.count_of(Kind::UseAfterFree), 1u);  // no new violation
  pool.release(c);
}

TEST(AllocHazard, UnreleasedLeaseReportsAsLeak) {
  HazardTracker hz("pool-hz");
  PoolAllocator pool("t");
  pool.set_hazard(&hz);
  PoolAllocator::Block kept = pool.acquire(1024);
  PoolAllocator::Block returned = pool.acquire(1024);
  pool.release(returned);
  hz.report_live_buffers_as_leaks();
  EXPECT_EQ(hz.count_of(Kind::Leak), 1u);
  pool.release(kept);
}

TEST(AllocHazard, CleanLeaseLifecycleIsSilent) {
  HazardTracker hz("pool-hz");
  PoolAllocator pool("t");
  pool.set_hazard(&hz);
  for (int i = 0; i < 5; ++i) {
    PoolAllocator::Block b = pool.acquire(4096);
    pool.release(b);
  }
  hz.report_live_buffers_as_leaks();
  EXPECT_EQ(hz.violation_count(), 0u);
}

TEST(Alloc, DefaultHostArenaIsAProcessSingleton) {
  PoolAllocator& a = default_host_arena();
  PoolAllocator& b = default_host_arena();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace hplx::device
