#include <gtest/gtest.h>

#include <vector>

#include "device/kernels.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::device {
namespace {

Device& test_device() {
  static Device dev("gcd0", 1ull << 30);
  return dev;
}

TEST(Kernels, GemmComputesAndChargesTime) {
  Stream s(test_device());
  const long m = 17, n = 13, k = 9;
  testref::Rand rng;
  auto a = rng.matrix(static_cast<int>(m), static_cast<int>(k), static_cast<int>(m));
  auto b = rng.matrix(static_cast<int>(k), static_cast<int>(n), static_cast<int>(k));
  std::vector<double> c(static_cast<std::size_t>(m * n), 1.0);
  auto want = c;

  gemm(s, m, n, k, -1.0, a.data(), m, b.data(), k, 1.0, c.data(), m);
  s.synchronize();

  testref::ref_gemm(blas::Trans::No, blas::Trans::No, static_cast<int>(m),
                    static_cast<int>(n), static_cast<int>(k), -1.0, a.data(),
                    static_cast<int>(m), b.data(), static_cast<int>(k), 1.0,
                    want.data(), static_cast<int>(m));
  EXPECT_LT(testref::max_diff(static_cast<int>(m), static_cast<int>(n),
                              c.data(), static_cast<int>(m), want.data(),
                              static_cast<int>(m)),
            1e-12 * k);
  EXPECT_GT(s.busy_seconds(), 0.0);
}

TEST(Kernels, TrsmLeftLowerUnit) {
  Stream s(test_device());
  const long nb = 12, n = 7;
  testref::Rand rng(77);
  auto l = rng.matrix(static_cast<int>(nb), static_cast<int>(nb),
                      static_cast<int>(nb));
  auto u0 = rng.matrix(static_cast<int>(nb), static_cast<int>(n),
                       static_cast<int>(nb));
  auto u = u0;
  trsm_left_lower_unit(s, nb, n, l.data(), nb, u.data(), nb);
  s.synchronize();

  // Multiply back with the unit-lower triangle.
  std::vector<double> y(static_cast<std::size_t>(nb * n), 0.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < nb; ++i) {
      double acc = u[static_cast<std::size_t>(j * nb + i)];  // diagonal 1
      for (int p = 0; p < i; ++p)
        acc += l[static_cast<std::size_t>(p * nb + i)] *
               u[static_cast<std::size_t>(j * nb + p)];
      y[static_cast<std::size_t>(j * nb + i)] = acc;
    }
  EXPECT_LT(testref::max_diff(static_cast<int>(nb), static_cast<int>(n),
                              y.data(), static_cast<int>(nb), u0.data(),
                              static_cast<int>(nb)),
            1e-9);
}

TEST(Kernels, HostDeviceCopies) {
  Stream s(test_device());
  Buffer dev_buf = test_device().alloc(64);
  std::vector<double> host(64);
  for (int i = 0; i < 64; ++i) host[static_cast<std::size_t>(i)] = i * 1.5;
  std::vector<double> back(64, 0.0);

  copy_h2d(s, dev_buf.data(), host.data(), 64);
  copy_d2h(s, back.data(), dev_buf.data(), 64);
  s.synchronize();
  for (int i = 0; i < 64; ++i)
    EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], i * 1.5);
  EXPECT_GT(s.busy_seconds(), 0.0);
}

TEST(Kernels, CopyMatrixStrided) {
  Stream s(test_device());
  // 3x2 source in ld=4, dest ld=3.
  std::vector<double> src{1, 2, 3, 99, 4, 5, 6, 99};
  std::vector<double> dst(6, 0.0);
  copy_matrix(s, 3, 2, src.data(), 4, dst.data(), 3);
  s.synchronize();
  EXPECT_DOUBLE_EQ(dst[0], 1.0);
  EXPECT_DOUBLE_EQ(dst[2], 3.0);
  EXPECT_DOUBLE_EQ(dst[3], 4.0);
  EXPECT_DOUBLE_EQ(dst[5], 6.0);
}

TEST(Kernels, RowGatherScatterRoundTrip) {
  Stream s(test_device());
  const long m = 10, n = 4;
  testref::Rand rng(5);
  auto a = rng.matrix(static_cast<int>(m), static_cast<int>(n),
                      static_cast<int>(m));
  auto orig = a;
  const std::vector<long> rows{7, 2, 9};

  std::vector<double> packed(static_cast<std::size_t>(rows.size()) * n, 0.0);
  row_gather(s, a.data(), m, rows, n, packed.data(),
             static_cast<long>(rows.size()));
  s.synchronize();
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (long j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(packed[r + static_cast<std::size_t>(j) * rows.size()],
                       orig[static_cast<std::size_t>(rows[r] + j * m)]);

  // Scatter doubled values back.
  for (auto& v : packed) v *= 2.0;
  row_scatter(s, a.data(), m, rows, n, packed.data(),
              static_cast<long>(rows.size()));
  s.synchronize();
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (long j = 0; j < n; ++j)
      EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(rows[r] + j * m)],
                       2.0 * orig[static_cast<std::size_t>(rows[r] + j * m)]);
  // Untouched rows intact.
  EXPECT_DOUBLE_EQ(a[0], orig[0]);
  EXPECT_DOUBLE_EQ(a[5], orig[5]);
}

TEST(Kernels, PackRowsProducesRowMajorSegments) {
  Stream s(test_device());
  // 5x3 matrix; pack rows {4, 0, 2} into contiguous row-major segments.
  std::vector<double> a(15);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 5; ++i)
      a[static_cast<std::size_t>(j * 5 + i)] = i * 10 + j;
  std::vector<double> out(9, -1.0);
  pack_rows(s, a.data(), 5, {4, 0, 2}, 3, out.data());
  s.synchronize();
  // Segment 0 = row 4: 40, 41, 42; segment 1 = row 0; segment 2 = row 2.
  EXPECT_DOUBLE_EQ(out[0], 40.0);
  EXPECT_DOUBLE_EQ(out[1], 41.0);
  EXPECT_DOUBLE_EQ(out[2], 42.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
  EXPECT_DOUBLE_EQ(out[5], 2.0);
  EXPECT_DOUBLE_EQ(out[6], 20.0);
  EXPECT_DOUBLE_EQ(out[8], 22.0);
}

TEST(Kernels, PackUnpackRowsRoundTrip) {
  Stream s(test_device());
  const long m = 12, n = 6;
  testref::Rand rng(21);
  auto a = rng.matrix(static_cast<int>(m), static_cast<int>(n),
                      static_cast<int>(m));
  const auto orig = a;
  const std::vector<long> rows{1, 7, 11, 3};
  std::vector<double> packed(rows.size() * static_cast<std::size_t>(n));
  pack_rows(s, a.data(), m, rows, n, packed.data());
  // Wipe the rows, then restore from the packed buffer.
  s.enqueue(0.0, [&] {
    for (long r : rows)
      for (long j = 0; j < n; ++j) a[static_cast<std::size_t>(j * m + r)] = -9.0;
  });
  unpack_rows(s, packed.data(), rows, n, a.data(), m);
  s.synchronize();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], orig[i]);
}

TEST(Kernels, UnpackRowsScattersToArbitraryTargets) {
  Stream s(test_device());
  // Row-major input with 2 rows of 3 cols scattered to matrix rows 3, 0.
  std::vector<double> rm{1, 2, 3, 4, 5, 6};
  std::vector<double> a(12, 0.0);  // 4x3
  unpack_rows(s, rm.data(), {3, 0}, 3, a.data(), 4);
  s.synchronize();
  EXPECT_DOUBLE_EQ(a[3], 1.0);   // (3,0)
  EXPECT_DOUBLE_EQ(a[7], 2.0);   // (3,1)
  EXPECT_DOUBLE_EQ(a[11], 3.0);  // (3,2)
  EXPECT_DOUBLE_EQ(a[0], 4.0);   // (0,0)
  EXPECT_DOUBLE_EQ(a[8], 6.0);   // (0,2)
  EXPECT_DOUBLE_EQ(a[1], 0.0);   // untouched
}

TEST(Kernels, PackRowsCmProducesColumnMajorWire) {
  Stream s(test_device());
  // 5x3 matrix; pack rows {4, 0, 2} into a 3x3 column-major wire block
  // (ld = number of packed rows): out[c*nr + i] = a(rows[i], c).
  std::vector<double> a(15);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 5; ++i)
      a[static_cast<std::size_t>(j * 5 + i)] = i * 10 + j;
  std::vector<double> out(9, -1.0);
  pack_rows_cm(s, a.data(), 5, {4, 0, 2}, 3, out.data());
  s.synchronize();
  // Column 0 of the wire = column 0 of rows {4, 0, 2}: 40, 0, 20.
  EXPECT_DOUBLE_EQ(out[0], 40.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 20.0);
  // Column 1: 41, 1, 21.
  EXPECT_DOUBLE_EQ(out[3], 41.0);
  EXPECT_DOUBLE_EQ(out[4], 1.0);
  EXPECT_DOUBLE_EQ(out[5], 21.0);
  // Column 2: 42, 2, 22.
  EXPECT_DOUBLE_EQ(out[6], 42.0);
  EXPECT_DOUBLE_EQ(out[8], 22.0);
}

TEST(Kernels, PackUnpackRowsCmRoundTrip) {
  Stream s(test_device());
  const long m = 12, n = 6;
  testref::Rand rng(22);
  auto a = rng.matrix(static_cast<int>(m), static_cast<int>(n),
                      static_cast<int>(m));
  const auto orig = a;
  const std::vector<long> rows{1, 7, 11, 3};
  std::vector<double> packed(rows.size() * static_cast<std::size_t>(n));
  pack_rows_cm(s, a.data(), m, rows, n, packed.data());
  // Wipe the rows, then restore from the column-major wire buffer.
  s.enqueue(0.0, [&] {
    for (long r : rows)
      for (long j = 0; j < n; ++j) a[static_cast<std::size_t>(j * m + r)] = -9.0;
  });
  unpack_rows_cm(s, packed.data(), rows, n, a.data(), m);
  s.synchronize();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], orig[i]);
}

TEST(Kernels, ColumnMajorWireMatchesRowMajorTransposed) {
  Stream s(test_device());
  const long m = 9, n = 4;
  testref::Rand rng(23);
  auto a = rng.matrix(static_cast<int>(m), static_cast<int>(n),
                      static_cast<int>(m));
  const std::vector<long> rows{6, 2, 8};
  const auto nr = static_cast<long>(rows.size());
  std::vector<double> rm(static_cast<std::size_t>(nr * n));
  std::vector<double> cm(static_cast<std::size_t>(nr * n));
  pack_rows(s, a.data(), m, rows, n, rm.data());
  pack_rows_cm(s, a.data(), m, rows, n, cm.data());
  s.synchronize();
  for (long i = 0; i < nr; ++i)
    for (long c = 0; c < n; ++c)
      EXPECT_DOUBLE_EQ(cm[static_cast<std::size_t>(c * nr + i)],
                       rm[static_cast<std::size_t>(i * n + c)])
          << "i=" << i << " c=" << c;
}

TEST(Kernels, UnpackRowsCmScattersColumnSubranges) {
  Stream s(test_device());
  // A chunked delivery unpacks a column subrange of the wire block: the
  // caller advances the input by c0*nr and the output by c0*lda.
  const long m = 6, n = 5;
  std::vector<double> a(static_cast<std::size_t>(m * n), 0.0);
  const std::vector<long> rows{4, 1};
  const auto nr = static_cast<long>(rows.size());
  std::vector<double> cm(static_cast<std::size_t>(nr * n));
  for (long c = 0; c < n; ++c)
    for (long i = 0; i < nr; ++i)
      cm[static_cast<std::size_t>(c * nr + i)] = 100.0 * c + i;
  // Deliver columns [2, 5) only.
  const long c0 = 2, nc = n - c0;
  unpack_rows_cm(s, cm.data() + c0 * nr, rows, nc, a.data() + c0 * m, m);
  s.synchronize();
  for (long c = 0; c < n; ++c)
    for (long i = 0; i < nr; ++i)
      EXPECT_DOUBLE_EQ(a[static_cast<std::size_t>(c * m + rows[static_cast<std::size_t>(i)])],
                       c < c0 ? 0.0 : 100.0 * c + i)
          << "i=" << i << " c=" << c;
}

TEST(Kernels, LaswpAppliesSequentialSwaps) {
  Stream s(test_device());
  // 4x2 matrix, pivots: row0<->row2, row1<->row1, row2<->row3.
  std::vector<double> a{0, 1, 2, 3, 10, 11, 12, 13};
  laswp(s, a.data(), 4, 2, {2, 1, 3});
  s.synchronize();
  // Sequential semantics: after k=0 swap(0,2): {2,1,0,3};
  // k=1 noop; k=2 swap(2,3): {2,1,3,0}.
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  EXPECT_DOUBLE_EQ(a[1], 1.0);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
  EXPECT_DOUBLE_EQ(a[3], 0.0);
  EXPECT_DOUBLE_EQ(a[4], 12.0);
  EXPECT_DOUBLE_EQ(a[7], 10.0);
}

TEST(Kernels, EmptyOpsAreNoops) {
  Stream s(test_device());
  gemm<double>(s, 0, 5, 5, 1.0, nullptr, 1, nullptr, 1, 0.0, nullptr, 1);
  row_gather<double>(s, nullptr, 1, {}, 5, nullptr, 1);
  laswp<double>(s, nullptr, 1, 0, {1, 2});
  s.synchronize();
  EXPECT_DOUBLE_EQ(s.busy_seconds(), 0.0);
}

}  // namespace
}  // namespace hplx::device
