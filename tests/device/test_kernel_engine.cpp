/// \file test_kernel_engine.cpp
/// \brief Property tests for the column-tiled kernel engine: every
/// row-swap/copy kernel must produce *bitwise identical* results to a
/// naive sequential reference for any tile width and team size, because a
/// tile covers whole columns and each output element is written by exactly
/// one tile. Also checks the end-to-end wiring: run_hpl residuals must not
/// change when HplConfig::swap_tile_cols / kernel_threads change.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <vector>

#include "blas/threading.hpp"
#include "comm/world.hpp"
#include "core/driver.hpp"
#include "device/engine.hpp"
#include "device/kernels.hpp"
#include "device/stream.hpp"

namespace hplx::device {
namespace {

Device& test_device() {
  static Device dev("gcd_engine", 1ull << 30);
  return dev;
}

/// Restores the process-global engine + team configuration that the tests
/// mutate, so suites sharing the binary see the defaults.
struct EngineState {
  EngineState() : saved(engine_config()) {}
  ~EngineState() {
    configure_engine(saved);
    blas::set_num_threads(1);
  }
  EngineConfig saved;
};

std::uint64_t xorshift(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

std::vector<double> random_matrix(long rows, long cols, std::uint64_t seed) {
  std::vector<double> a(static_cast<std::size_t>(rows) * cols);
  std::uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
  for (auto& v : a)
    v = static_cast<double>(static_cast<std::int64_t>(xorshift(s))) * 0x1.0p-63;
  return a;
}

/// jb *distinct* rows out of [0, m) in shuffled order — the solver's
/// contract for gather/scatter destinations.
std::vector<long> distinct_rows(long jb, long m, std::uint64_t seed) {
  std::vector<long> all(static_cast<std::size_t>(m));
  std::iota(all.begin(), all.end(), 0L);
  std::uint64_t s = seed * 0x2545f4914f6cdd1dull + 5;
  for (long k = 0; k < jb; ++k) {
    const long j =
        k + static_cast<long>(xorshift(s) % static_cast<std::uint64_t>(m - k));
    std::swap(all[static_cast<std::size_t>(k)], all[static_cast<std::size_t>(j)]);
  }
  all.resize(static_cast<std::size_t>(jb));
  return all;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Naive sequential references: the seed's row-outer loops.

void ref_row_gather(const double* a, long lda, const std::vector<long>& rows,
                    long n, double* out, long ldo) {
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (long j = 0; j < n; ++j)
      out[static_cast<long>(r) + j * ldo] = a[rows[r] + j * lda];
}

void ref_row_scatter(double* a, long lda, const std::vector<long>& rows,
                     long n, const double* in, long ldi) {
  for (std::size_t r = 0; r < rows.size(); ++r)
    for (long j = 0; j < n; ++j)
      a[rows[r] + j * lda] = in[static_cast<long>(r) + j * ldi];
}

void ref_pack_rows(const double* a, long lda, const std::vector<long>& rows,
                   long n, double* out_rowmajor) {
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (long c = 0; c < n; ++c)
      out_rowmajor[static_cast<long>(i) * n + c] = a[rows[i] + c * lda];
}

void ref_unpack_rows(const double* in_rowmajor, const std::vector<long>& rows,
                     long n, double* a, long lda) {
  for (std::size_t i = 0; i < rows.size(); ++i)
    for (long c = 0; c < n; ++c)
      a[rows[i] + c * lda] = in_rowmajor[static_cast<long>(i) * n + c];
}

void ref_laswp(double* a, long lda, long n, const std::vector<long>& ipiv) {
  for (std::size_t k = 0; k < ipiv.size(); ++k) {
    if (ipiv[k] == static_cast<long>(k)) continue;
    for (long j = 0; j < n; ++j)
      std::swap(a[static_cast<long>(k) + j * lda], a[ipiv[k] + j * lda]);
  }
}

const long kTileSizes[] = {1, 3, 16, 250};
const int kTeamSizes[] = {1, 2, 4};

struct Shape {
  long m, jb, n;
};
const Shape kShapes[] = {{37, 5, 23}, {128, 32, 96}, {301, 64, 257}};

TEST(KernelEngine, RowGatherScatterPackUnpackMatchNaive) {
  EngineState restore;
  for (const Shape& sh : kShapes) {
    const long lda = sh.m + 3;
    const auto a0 = random_matrix(lda, sh.n, 11 * sh.m);
    const auto rows = distinct_rows(sh.jb, sh.m, 13 * sh.jb);
    const auto wire0 = random_matrix(sh.jb, sh.n, 17 * sh.n);

    std::vector<double> want_gather(static_cast<std::size_t>(sh.jb) * sh.n);
    ref_row_gather(a0.data(), lda, rows, sh.n, want_gather.data(), sh.jb);
    std::vector<double> want_pack(static_cast<std::size_t>(sh.jb) * sh.n);
    ref_pack_rows(a0.data(), lda, rows, sh.n, want_pack.data());
    auto want_scatter = a0;
    ref_row_scatter(want_scatter.data(), lda, rows, sh.n, wire0.data(), sh.jb);
    auto want_unpack = a0;
    ref_unpack_rows(want_pack.data(), rows, sh.n, want_unpack.data(), lda);

    for (long tile : kTileSizes) {
      for (int team : kTeamSizes) {
        SCOPED_TRACE(::testing::Message() << "m=" << sh.m << " jb=" << sh.jb
                                          << " n=" << sh.n << " tile=" << tile
                                          << " team=" << team);
        blas::set_num_threads(team);
        configure_engine({tile, 0});
        Stream s(test_device());

        std::vector<double> gout(static_cast<std::size_t>(sh.jb) * sh.n, -7.0);
        row_gather(s, a0.data(), lda, rows, sh.n, gout.data(), sh.jb);
        std::vector<double> pout(static_cast<std::size_t>(sh.jb) * sh.n, -7.0);
        pack_rows(s, a0.data(), lda, rows, sh.n, pout.data());
        s.synchronize();
        EXPECT_TRUE(bitwise_equal(gout, want_gather));
        EXPECT_TRUE(bitwise_equal(pout, want_pack));

        auto sa = a0;
        row_scatter(s, sa.data(), lda, rows, sh.n, wire0.data(), sh.jb);
        s.synchronize();
        EXPECT_TRUE(bitwise_equal(sa, want_scatter));

        auto ua = a0;
        unpack_rows(s, want_pack.data(), rows, sh.n, ua.data(), lda);
        s.synchronize();
        EXPECT_TRUE(bitwise_equal(ua, want_unpack));
      }
    }
  }
}

TEST(KernelEngine, LaswpMatchesNaiveForAliasingPivotPatterns) {
  EngineState restore;
  const long m = 130, n = 211, lda = m + 1, jb = 48;
  const auto a0 = random_matrix(lda, n, 23);

  // Pivot patterns that alias rows as hard as possible: identity, the
  // all-rows-rotate chain, everything targeting one far row, and a random
  // HPL-style draw (ipiv[k] in [k, m)). Order of application matters in
  // every non-trivial one.
  std::vector<std::vector<long>> patterns;
  patterns.emplace_back(jb);
  std::iota(patterns.back().begin(), patterns.back().end(), 0L);  // identity
  patterns.emplace_back(jb);
  for (long k = 0; k < jb; ++k) patterns.back()[k] = k + 1;  // rotate chain
  patterns.emplace_back(jb, m - 1);  // all swaps hit the same victim row
  patterns.emplace_back(jb);
  std::uint64_t s = 31;
  for (long k = 0; k < jb; ++k)
    patterns.back()[k] =
        k + static_cast<long>(xorshift(s) % static_cast<std::uint64_t>(m - k));

  for (std::size_t p = 0; p < patterns.size(); ++p) {
    auto want = a0;
    ref_laswp(want.data(), lda, n, patterns[p]);
    for (long tile : kTileSizes) {
      for (int team : kTeamSizes) {
        SCOPED_TRACE(::testing::Message()
                     << "pattern=" << p << " tile=" << tile << " team=" << team);
        blas::set_num_threads(team);
        configure_engine({tile, 0});
        Stream st(test_device());
        auto a = a0;
        laswp(st, a.data(), lda, n, patterns[p]);
        st.synchronize();
        EXPECT_TRUE(bitwise_equal(a, want));
      }
    }
  }
}

TEST(KernelEngine, CopyKernelsMatchAcrossTilesAndTeams) {
  EngineState restore;
  const long m = 190, n = 170, lds = m + 5, ldd = m + 2;
  const auto src = random_matrix(lds, n, 41);
  std::vector<double> want(static_cast<std::size_t>(ldd) * n, 0.0);
  for (long j = 0; j < n; ++j)
    for (long i = 0; i < m; ++i) want[i + j * ldd] = src[i + j * lds];

  for (long tile : kTileSizes) {
    for (int team : kTeamSizes) {
      SCOPED_TRACE(::testing::Message() << "tile=" << tile << " team=" << team);
      blas::set_num_threads(team);
      configure_engine({tile, 0});
      Stream s(test_device());
      std::vector<double> d1(static_cast<std::size_t>(ldd) * n, 0.0);
      copy_matrix(s, m, n, src.data(), lds, d1.data(), ldd);
      std::vector<double> d2(static_cast<std::size_t>(ldd) * n, 0.0);
      copy_matrix_h2d(s, m, n, src.data(), lds, d2.data(), ldd);
      // Gap-free fast path (lds == ldd == m).
      std::vector<double> packed(static_cast<std::size_t>(m) * n, 0.0);
      copy_matrix_d2h(s, m, n, want.data(), ldd, packed.data(), m);
      s.synchronize();
      EXPECT_TRUE(bitwise_equal(d1, want));
      EXPECT_TRUE(bitwise_equal(d2, want));
      for (long j = 0; j < n; ++j)
        ASSERT_EQ(std::memcmp(packed.data() + j * m, want.data() + j * ldd,
                              static_cast<std::size_t>(m) * sizeof(double)),
                  0);
    }
  }
}

TEST(KernelEngine, SolverResidualBitwiseIdenticalAcrossEngineConfigs) {
  EngineState restore;
  // The engine must never change the numerics, only the schedule: the same
  // solve under every tile/team configuration has to reproduce the exact
  // residual double of the sequential default.
  struct Combo {
    long tile;
    int threads;
  };
  const Combo combos[] = {{256, 1}, {1, 1}, {7, 0}, {64, 2}, {256, 4}};
  double want = 0.0;
  bool have_want = false;
  for (const Combo& c : combos) {
    core::HplConfig cfg;
    cfg.n = 160;
    cfg.nb = 32;
    cfg.p = 1;
    cfg.q = 1;
    cfg.pipeline = core::PipelineMode::LookaheadSplit;
    cfg.swap_tile_cols = c.tile;
    cfg.kernel_threads = c.threads;
    cfg.blas_threads = c.threads == 0 ? 2 : c.threads;
    core::HplResult result;
    comm::World::run(1, [&](comm::Communicator& world) {
      result = core::run_hpl(world, cfg);
    });
    EXPECT_TRUE(result.verify.passed);
    if (!have_want) {
      want = result.verify.residual;
      have_want = true;
    } else {
      SCOPED_TRACE(::testing::Message()
                   << "tile=" << c.tile << " threads=" << c.threads);
      EXPECT_EQ(std::memcmp(&result.verify.residual, &want, sizeof(double)),
                0);
    }
  }
}

}  // namespace
}  // namespace hplx::device
