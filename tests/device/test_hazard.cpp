/// HazardTracker unit tests. Every scenario declares access sets on
/// no-op lambdas — the tracker's verdict depends only on the declared
/// spans and the happens-before edges, never on what the lambdas do, so
/// the tests are deterministic regardless of worker-thread timing (all
/// bookkeeping runs on the enqueueing host thread).

#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>

#include "device/device.hpp"
#include "device/hazard.hpp"
#include "device/stream.hpp"

namespace hplx::device {
namespace {

constexpr std::size_t kHbm = 16UL << 20;

Device make_checked(const char* name = "hz") {
  return Device(name, kHbm, DeviceModel::mi250x_gcd(), /*hazard_check=*/true);
}

using Kind = HazardTracker::Kind;

TEST(Hazard, OffByDefaultAndFreeWhenOff) {
  ::unsetenv("HPLX_HAZARD");
  Device dev("plain", kHbm);
  EXPECT_EQ(dev.hazard(), nullptr);
  // Annotated enqueues must work (and cost one pointer test) without a
  // tracker attached.
  Buffer b = dev.alloc(64);
  Stream s(dev, "s");
  s.enqueue_annotated(0.0, "noop", {span_write(b.data(), b.count())}, [] {});
  s.synchronize();
}

TEST(Hazard, EnvVariableAttachesTracker) {
  ::setenv("HPLX_HAZARD", "1", 1);
  EXPECT_TRUE(hazard_env_enabled());
  {
    Device dev("env", kHbm);
    EXPECT_NE(dev.hazard(), nullptr);
  }
  ::setenv("HPLX_HAZARD", "0", 1);
  EXPECT_FALSE(hazard_env_enabled());
  {
    Device dev("env0", kHbm);
    EXPECT_EQ(dev.hazard(), nullptr);
  }
  ::unsetenv("HPLX_HAZARD");
  EXPECT_FALSE(hazard_env_enabled());
}

TEST(Hazard, UnorderedCrossStreamWriteWrite) {
  Device dev = make_checked();
  Buffer b = dev.alloc(128);
  {
    Stream s0(dev, "s0"), s1(dev, "s1");
    s0.enqueue_annotated(0.0, "writer_a", {span_write(b.data(), 128)}, [] {});
    s1.enqueue_annotated(0.0, "writer_b", {span_write(b.data(), 128)}, [] {});
    s0.synchronize();
    s1.synchronize();
  }
  EXPECT_EQ(dev.hazard()->count_of(Kind::UnorderedStreams), 1u);
  EXPECT_EQ(dev.hazard()->violation_count(), 1u);
}

TEST(Hazard, ReadReadNeverConflicts) {
  Device dev = make_checked();
  Buffer b = dev.alloc(128);
  {
    Stream s0(dev, "s0"), s1(dev, "s1");
    s0.enqueue_annotated(0.0, "reader_a", {span_read(b.data(), 128)}, [] {});
    s1.enqueue_annotated(0.0, "reader_b", {span_read(b.data(), 128)}, [] {});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, DisjointRangesNeverConflict) {
  Device dev = make_checked();
  Buffer b = dev.alloc(128);
  {
    Stream s0(dev, "s0"), s1(dev, "s1");
    s0.enqueue_annotated(0.0, "lo", {span_write(b.data(), 64)}, [] {});
    s1.enqueue_annotated(0.0, "hi", {span_write(b.data() + 64, 64)}, [] {});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, EventFenceOrdersCrossStreamWriters) {
  Device dev = make_checked();
  Buffer b = dev.alloc(128);
  {
    Stream s0(dev, "s0"), s1(dev, "s1");
    s0.enqueue_annotated(0.0, "writer_a", {span_write(b.data(), 128)}, [] {});
    Event done = s0.record();
    s1.wait_event(done);
    s1.enqueue_annotated(0.0, "writer_b", {span_write(b.data(), 128)}, [] {});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, TransitiveEventEdgeThroughThirdStream) {
  Device dev = make_checked();
  Buffer b = dev.alloc(64);
  {
    Stream s0(dev, "s0"), s1(dev, "s1"), s2(dev, "s2");
    s0.enqueue_annotated(0.0, "origin", {span_write(b.data(), 64)}, [] {});
    Event e0 = s0.record();
    s1.wait_event(e0);
    s1.enqueue_annotated(0.0, "middle", {span_read(b.data(), 64)}, [] {});
    Event e1 = s1.record();
    s2.wait_event(e1);
    // s2 never waited on s0 directly, but e1's clock carries e0's edge.
    s2.enqueue_annotated(0.0, "leaf", {span_write(b.data(), 64)}, [] {});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, HostWriteVersusInFlightDeviceRead) {
  Device dev = make_checked();
  Buffer b = dev.alloc(96);
  {
    Stream s(dev, "s");
    s.enqueue_annotated(0.0, "dev_reader", {span_read(b.data(), 96)}, [] {});
    {
      HostAccessScope guard(dev.hazard(), "host_writer",
                            {span_write(b.data(), 96)});
    }
    EXPECT_EQ(dev.hazard()->count_of(Kind::HostDevice), 1u);

    // After a real Event::wait the host clock dominates the read: clean.
    Event done = s.record();
    done.wait();
    {
      HostAccessScope guard(dev.hazard(), "host_writer",
                            {span_write(b.data(), 96)});
    }
    EXPECT_EQ(dev.hazard()->count_of(Kind::HostDevice), 1u);
  }
}

TEST(Hazard, WaitUnorderedSkipsTheHappensBeforeJoin) {
  Device dev = make_checked();
  Buffer b = dev.alloc(32);
  {
    Stream s(dev, "s");
    s.enqueue_annotated(0.0, "dev_reader", {span_read(b.data(), 32)}, [] {});
    Event done = s.record();
    // The wait really blocks (execution is race-free) but the model treats
    // the fence as absent — the fence-omission test hook.
    done.wait_unordered();
    HostAccessScope guard(dev.hazard(), "host_writer",
                          {span_write(b.data(), 32)});
    EXPECT_EQ(dev.hazard()->count_of(Kind::HostDevice), 1u);
  }
}

TEST(Hazard, HostReadVersusDeviceReadIsClean) {
  Device dev = make_checked();
  Buffer b = dev.alloc(32);
  {
    Stream s(dev, "s");
    s.enqueue_annotated(0.0, "dev_reader", {span_read(b.data(), 32)}, [] {});
    HostAccessScope guard(dev.hazard(), "host_reader",
                          {span_read(b.data(), 32)});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, SynchronizeJoinsHostClock) {
  Device dev = make_checked();
  Buffer b = dev.alloc(32);
  {
    Stream s(dev, "s");
    s.enqueue_annotated(0.0, "dev_writer", {span_write(b.data(), 32)}, [] {});
    s.synchronize();
    HostAccessScope guard(dev.hazard(), "host_writer",
                          {span_write(b.data(), 32)});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, FreeWithPendingUnorderedOps) {
  Device dev = make_checked();
  {
    Stream s(dev, "s");
    {
      Buffer b = dev.alloc(64);
      s.enqueue_annotated(0.0, "dev_writer", {span_write(b.data(), 64)},
                          [] {});
      s.synchronize();  // keep execution safe; model sees the sync too...
      // ...so re-declare an op the host will NOT wait for before the free.
      s.enqueue_annotated(0.0, "late_writer", {span_write(b.data(), 64)},
                          [] {});
    }  // ~Buffer with late_writer un-waited
    EXPECT_EQ(dev.hazard()->count_of(Kind::FreePending), 1u);
  }
}

TEST(Hazard, OrderlyFreeIsClean) {
  Device dev = make_checked();
  {
    Stream s(dev, "s");
    Buffer b = dev.alloc(64);
    s.enqueue_annotated(0.0, "dev_writer", {span_write(b.data(), 64)}, [] {});
    s.synchronize();
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, UseAfterFreeDetected) {
  Device dev = make_checked();
  {
    Stream s(dev, "s");
    const double* stale = nullptr;
    std::size_t count = 0;
    {
      Buffer b = dev.alloc(64);
      stale = b.data();
      count = b.count();
    }
    // Declared touch of the dead range; the lambda never dereferences it.
    s.enqueue_annotated(0.0, "stale_reader", {span_read(stale, count)}, [] {});
    EXPECT_EQ(dev.hazard()->count_of(Kind::UseAfterFree), 1u);
  }
}

TEST(Hazard, AllocReuseClearsFreedRange) {
  Device dev = make_checked();
  {
    Stream s(dev, "s");
    const double* stale = nullptr;
    {
      Buffer b = dev.alloc(64);
      stale = b.data();
    }
    // Re-allocating may or may not land on the same address; on_alloc
    // drops any freed marker it overlaps, so a fresh buffer's own range
    // is always clean.
    Buffer b2 = dev.alloc(64);
    s.enqueue_annotated(0.0, "fresh", {span_write(b2.data(), 64)}, [] {});
    if (b2.data() == stale) {
      EXPECT_EQ(dev.hazard()->count_of(Kind::UseAfterFree), 0u);
    }
  }
  EXPECT_EQ(dev.hazard()->count_of(Kind::UseAfterFree), 0u);
}

TEST(Hazard, LiveBuffersReportAsLeaks) {
  Device dev = make_checked();
  Buffer a = dev.alloc(16);
  Buffer b = dev.alloc(32);
  dev.hazard()->report_live_buffers_as_leaks();
  // Dedup collapses same-label leaks into one record with the total count.
  EXPECT_EQ(dev.hazard()->count_of(Kind::Leak), 2u);
  EXPECT_EQ(dev.hazard()->distinct_of(Kind::Leak), 1u);
}

TEST(Hazard, BufferSelfMoveAssignIsSafe) {
  Device dev = make_checked();
  Buffer b = dev.alloc(64);
  const double* ptr = b.data();
  Buffer& alias = b;
  b = std::move(alias);
  EXPECT_TRUE(b.allocated());
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.count(), 64u);
  // The self-move must not have registered a free: touching the buffer is
  // not use-after-free and the allocation is still accounted.
  Stream s(dev, "s");
  s.enqueue_annotated(0.0, "toucher", {span_write(b.data(), 64)}, [] {});
  EXPECT_EQ(dev.hazard()->count_of(Kind::UseAfterFree), 0u);
  EXPECT_EQ(dev.hbm_used(), 64 * sizeof(double));
}

TEST(Hazard, DedupCountsRepeatedViolations) {
  Device dev = make_checked();
  Buffer b = dev.alloc(16);
  {
    Stream s(dev, "s");
    s.enqueue_annotated(0.0, "dev_writer", {span_write(b.data(), 16)}, [] {});
    for (int i = 0; i < 5; ++i) {
      HostAccessScope guard(dev.hazard(), "host_writer",
                            {span_write(b.data(), 16)});
    }
  }
  EXPECT_EQ(dev.hazard()->count_of(Kind::HostDevice), 5u);
  EXPECT_EQ(dev.hazard()->distinct_of(Kind::HostDevice), 1u);
  const auto records = dev.hazard()->report();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].op_a, "host_writer");
  EXPECT_STREQ(records[0].op_b, "dev_writer");
  EXPECT_EQ(records[0].count, 5u);
  EXPECT_NE(dev.hazard()->format_report().find("host-vs-device"),
            std::string::npos);
}

TEST(Hazard, MatrixEnvelopesOfDisjointColumnBandsAreDisjoint) {
  // The guarantee the banded multi-stream update relies on: bands are
  // disjoint column ranges of one lda-strided matrix, so their envelopes
  // must not overlap (m <= lda).
  Device dev = make_checked();
  const long lda = 32, m = 32;
  Buffer a = dev.alloc(static_cast<std::size_t>(lda) * 48);
  {
    Stream s0(dev, "s0"), s1(dev, "s1");
    s0.enqueue_annotated(0.0, "band0",
                         {span_matrix(a.data(), m, 16, lda, true)}, [] {});
    s1.enqueue_annotated(
        0.0, "band1", {span_matrix(a.data() + 16 * lda, m, 32, lda, true)},
        [] {});
  }
  EXPECT_EQ(dev.hazard()->violation_count(), 0u);
}

TEST(Hazard, PruneKeepsDetectionExact) {
  // Drive well past the prune threshold with fully fenced traffic, then
  // verify a genuine violation is still caught (pruning only drops
  // entries every clock dominates).
  Device dev = make_checked();
  Buffer b = dev.alloc(256);
  {
    Stream s0(dev, "s0"), s1(dev, "s1");
    for (int i = 0; i < 200; ++i) {
      s0.enqueue_annotated(0.0, "ping", {span_write(b.data(), 128)}, [] {});
      Event e = s0.record();
      s1.wait_event(e);
      s1.enqueue_annotated(0.0, "pong", {span_read(b.data(), 128)}, [] {});
      Event e2 = s1.record();
      s0.wait_event(e2);
    }
    EXPECT_EQ(dev.hazard()->violation_count(), 0u);
    s0.enqueue_annotated(0.0, "raceful", {span_write(b.data() + 128, 128)},
                         [] {});
    s1.enqueue_annotated(0.0, "racer", {span_write(b.data() + 128, 128)},
                         [] {});
  }
  EXPECT_EQ(dev.hazard()->count_of(Kind::UnorderedStreams), 1u);
}

}  // namespace
}  // namespace hplx::device
