#include <gtest/gtest.h>

#include <vector>

#include "blas/blas.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::blas {
namespace {

TEST(Dlange, InfNormIsMaxRowSum) {
  // A = [1 -2; 3 4] colmajor {1,3,-2,4}: row sums {3, 7}.
  std::vector<double> a{1, 3, -2, 4};
  EXPECT_DOUBLE_EQ(dlange_inf(2, 2, a.data(), 2), 7.0);
}

TEST(Dlange, OneNormIsMaxColSum) {
  std::vector<double> a{1, 3, -2, 4};
  EXPECT_DOUBLE_EQ(dlange_one(2, 2, a.data(), 2), 6.0);
}

TEST(Dlange, MaxNorm) {
  std::vector<double> a{1, -9, 2, 4};
  EXPECT_DOUBLE_EQ(dlange_max(2, 2, a.data(), 2), 9.0);
}

TEST(Dlange, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(dlange_inf(0, 5, nullptr, 1), 0.0);
  EXPECT_DOUBLE_EQ(dlange_one(5, 0, nullptr, 5), 0.0);
}

TEST(Dlange, RespectsLeadingDimension) {
  // 2x2 logical matrix inside ld=3 storage; padding rows hold huge values
  // that must not leak into the norm.
  std::vector<double> a{1, 1, 999, 1, 1, 999};
  EXPECT_DOUBLE_EQ(dlange_inf(2, 2, a.data(), 3), 2.0);
}

TEST(Dlacpy, CopiesWithDifferentLds) {
  std::vector<double> a{1, 2, 9, 3, 4, 9};  // 2x2 in ld=3
  std::vector<double> b(4, 0.0);
  dlacpy(2, 2, a.data(), 3, b.data(), 2);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 3.0);
  EXPECT_DOUBLE_EQ(b[3], 4.0);
}

}  // namespace
}  // namespace hplx::blas
