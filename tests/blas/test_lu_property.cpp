/// Property test assembling the BLAS kernels the way HPL's panel
/// factorization does: an unblocked right-looking LU with partial pivoting
/// built from idamax/dswap/dscal/dger must reproduce P·A = L·U and solve
/// linear systems via the dtrsm/dtrsv kernels. This is the ground-truth
/// oracle the distributed factorization is later compared against.

#include <gtest/gtest.h>

#include <vector>

#include "blas/blas.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::blas {
namespace {

using testref::Rand;

/// Right-looking LU with partial pivoting, exactly the kernel sequence of
/// HPL's pdfact inner loop: pivot search, row swap, column scale, rank-1
/// update. Returns the pivot rows (LAPACK-style: row k swapped with ipiv[k]).
std::vector<int> lu_factor(int n, double* a, int lda) {
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    const int p = k + idamax(n - k, a + static_cast<long>(k) * lda + k, 1);
    ipiv[static_cast<std::size_t>(k)] = p;
    if (p != k) dswap(n, a + k, lda, a + p, lda);
    dscal(n - k - 1, 1.0 / a[static_cast<long>(k) * lda + k],
          a + static_cast<long>(k) * lda + k + 1, 1);
    dger(n - k - 1, n - k - 1, -1.0, a + static_cast<long>(k) * lda + k + 1,
         1, a + static_cast<long>(k + 1) * lda + k, lda,
         a + static_cast<long>(k + 1) * lda + k + 1, lda);
  }
  return ipiv;
}

class LuSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuSweep, PAEqualsLU) {
  const int n = GetParam();
  Rand rng(static_cast<std::uint64_t>(n) * 2654435761u + 3);
  auto a0 = rng.matrix(n, n, n);
  auto a = a0;
  const auto ipiv = lu_factor(n, a.data(), n);

  // Apply the pivots to A0 to get P*A0.
  auto pa = a0;
  for (int k = 0; k < n; ++k) {
    const int p = ipiv[static_cast<std::size_t>(k)];
    if (p != k) dswap(n, pa.data() + k, n, pa.data() + p, n);
  }

  // Reconstruct L*U from the packed factorization.
  std::vector<double> l(static_cast<std::size_t>(n) * n, 0.0);
  std::vector<double> u(static_cast<std::size_t>(n) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const double v = a[static_cast<std::size_t>(j) * n + i];
      if (i > j) l[static_cast<std::size_t>(j) * n + i] = v;
      else u[static_cast<std::size_t>(j) * n + i] = v;
    }
    l[static_cast<std::size_t>(j) * n + j] = 1.0;
  }
  std::vector<double> lu(static_cast<std::size_t>(n) * n, 0.0);
  testref::ref_gemm(Trans::No, Trans::No, n, n, n, 1.0, l.data(), n, u.data(),
                    n, 0.0, lu.data(), n);

  EXPECT_LT(testref::max_diff(n, n, pa.data(), n, lu.data(), n),
            1e-10 * n * n);
}

TEST_P(LuSweep, SolvesLinearSystem) {
  const int n = GetParam();
  Rand rng(static_cast<std::uint64_t>(n) * 1099511628211ull + 9);
  auto a0 = rng.matrix(n, n, n);
  std::vector<double> x_true(static_cast<std::size_t>(n));
  for (auto& v : x_true) v = rng.next();
  // b = A0 * x_true.
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  dgemv(Trans::No, n, n, 1.0, a0.data(), n, x_true.data(), 1, 0.0, b.data(),
        1);

  auto a = a0;
  const auto ipiv = lu_factor(n, a.data(), n);
  // Forward: apply pivots to b, solve L y = Pb, then U x = y.
  for (int k = 0; k < n; ++k) {
    const int p = ipiv[static_cast<std::size_t>(k)];
    if (p != k) std::swap(b[static_cast<std::size_t>(k)], b[static_cast<std::size_t>(p)]);
  }
  dtrsv(Uplo::Lower, Trans::No, Diag::Unit, n, a.data(), n, b.data(), 1);
  dtrsv(Uplo::Upper, Trans::No, Diag::NonUnit, n, a.data(), n, b.data(), 1);

  double err = 0.0;
  for (int i = 0; i < n; ++i)
    err = std::max(err, std::abs(b[static_cast<std::size_t>(i)] -
                                 x_true[static_cast<std::size_t>(i)]));
  EXPECT_LT(err, 1e-7 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSweep,
                         ::testing::Values(1, 2, 3, 5, 16, 33, 64, 100));

}  // namespace
}  // namespace hplx::blas
