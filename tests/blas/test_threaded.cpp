/// Property tests for the packed BLAS-3 engine's threading and numerical
/// invariants: every team size must match the naive reference within
/// tolerance AND reproduce the single-thread result bitwise, the engine
/// choice (small vs packed vs teamed) must not depend on how a logical
/// update is sliced into calls, and beta == 0 must overwrite C without
/// reading it even when C starts as NaN/Inf.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "blas/blas.hpp"
#include "blas/threading.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::blas {
namespace {

using testref::Rand;

/// Restores sequential BLAS when a test exits, pass or fail.
struct TeamGuard {
  ~TeamGuard() { set_num_threads(1); }
};

const int kTeams[] = {1, 2, 4};

// ------------------------------------------------------------------ dgemm

struct ThreadedGemmCase {
  int m, n, k;
  double alpha, beta;
};

class ThreadedGemm : public ::testing::TestWithParam<ThreadedGemmCase> {};

TEST_P(ThreadedGemm, AllTransposesAndTeamSizesMatchReferenceBitwise) {
  TeamGuard guard;
  const auto c = GetParam();
  for (Trans ta : {Trans::No, Trans::Yes}) {
    for (Trans tb : {Trans::No, Trans::Yes}) {
      Rand rng(static_cast<std::uint64_t>(c.m * 7919 + c.n * 104729 + c.k) +
               (ta == Trans::Yes ? 11 : 0) + (tb == Trans::Yes ? 23 : 0));
      const int lda = (ta == Trans::No ? c.m : c.k) + 3;
      const int ldb = (tb == Trans::No ? c.k : c.n) + 2;
      const int ldc = c.m + 1;
      auto a = rng.matrix(ta == Trans::No ? c.m : c.k,
                          ta == Trans::No ? c.k : c.m, lda);
      auto b = rng.matrix(tb == Trans::No ? c.k : c.n,
                          tb == Trans::No ? c.n : c.k, ldb);
      auto c0 = rng.matrix(c.m, c.n, ldc);

      auto want = c0;
      testref::ref_gemm(ta, tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                        b.data(), ldb, c.beta, want.data(), ldc);

      std::vector<double> single;
      for (int t : kTeams) {
        set_num_threads(t);
        auto got = c0;
        dgemm(ta, tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
              c.beta, got.data(), ldc);
        EXPECT_LT(
            testref::max_diff(c.m, c.n, got.data(), ldc, want.data(), ldc),
            1e-10 * (c.k + 1))
            << "T=" << t << " ta=" << (ta == Trans::Yes) << " tb="
            << (tb == Trans::Yes);
        if (t == 1) {
          single = got;
        } else {
          // Teaming partitions m and n but never k, and each C element is
          // written by exactly one thread — results must be identical to
          // the last bit, not merely close.
          for (int j = 0; j < c.n; ++j)
            for (int i = 0; i < c.m; ++i) {
              const std::size_t idx =
                  static_cast<std::size_t>(j) * ldc + static_cast<std::size_t>(i);
              ASSERT_EQ(single[idx], got[idx])
                  << "bitwise mismatch at (" << i << "," << j << ") T=" << t;
            }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScalars, ThreadedGemm,
    ::testing::Values(
        // Tiny (small-path) shapes.
        ThreadedGemmCase{1, 1, 1, 1.0, 0.0},
        ThreadedGemmCase{13, 17, 9, -1.0, 1.0},
        // Shapes straddling the pack block sizes MC=128, KC=256, NC=512.
        ThreadedGemmCase{129, 65, 300, 1.0, 1.0},
        ThreadedGemmCase{257, 520, 80, -1.0, 1.0},
        ThreadedGemmCase{160, 130, 257, 1.0, 0.0},
        // Ragged micro-tiles (m % 4 != 0, n % 8 != 0).
        ThreadedGemmCase{131, 77, 64, 2.5, -0.5},
        // HPL trailing-update shape at team-eligible size.
        ThreadedGemmCase{512, 256, 32, -1.0, 1.0},
        // alpha == 0 degenerates to the beta sweep.
        ThreadedGemmCase{100, 90, 50, 0.0, 0.5},
        ThreadedGemmCase{100, 90, 50, 0.0, 0.0},
        ThreadedGemmCase{96, 88, 48, 1.0, -1.0}));

TEST(GemmDeterminism, ResultIndependentOfCallSlicing) {
  // The pipeline modes cut one logical trailing update C -= L·U into
  // differently shaped dgemm calls (full width, lookahead block + rest,
  // split-update halves). Those calls land on different engines depending
  // on their flop counts; all of them must produce the same bits.
  TeamGuard guard;
  const int m = 128, n = 112, k = 16;
  Rand rng(42);
  const int lda = m, ldb = k, ldc = m;
  auto a = rng.matrix(m, k, lda);
  auto b = rng.matrix(k, n, ldb);
  auto c0 = rng.matrix(m, n, ldc);

  auto whole = c0;
  dgemm(Trans::No, Trans::No, m, n, k, -1.0, a.data(), lda, b.data(), ldb,
        1.0, whole.data(), ldc);

  for (int t : kTeams) {
    set_num_threads(t);
    for (int first : {16, 40, 96}) {
      auto sliced = c0;
      dgemm(Trans::No, Trans::No, m, first, k, -1.0, a.data(), lda, b.data(),
            ldb, 1.0, sliced.data(), ldc);
      dgemm(Trans::No, Trans::No, m, n - first, k, -1.0, a.data(), lda,
            b.data() + static_cast<std::size_t>(first) * ldb, ldb, 1.0,
            sliced.data() + static_cast<std::size_t>(first) * ldc, ldc);
      for (std::size_t i = 0; i < sliced.size(); ++i)
        ASSERT_EQ(whole[i], sliced[i]) << "first=" << first << " T=" << t;
    }
  }
}

TEST(GemmBetaZero, OverwritesNanAndInfOnEveryPath) {
  TeamGuard guard;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // Small path, packed path, and teamed packed path.
  struct Shape {
    int m, n, k;
  };
  for (Shape s : {Shape{5, 4, 3}, Shape{200, 160, 64}, Shape{512, 256, 64}}) {
    Rand rng(7);
    auto a = rng.matrix(s.m, s.k, s.m);
    auto b = rng.matrix(s.k, s.n, s.k);
    std::vector<double> want(static_cast<std::size_t>(s.m) * s.n, 0.0);
    testref::ref_gemm(Trans::No, Trans::No, s.m, s.n, s.k, 1.0, a.data(), s.m,
                      b.data(), s.k, 0.0, want.data(), s.m);
    for (int t : kTeams) {
      set_num_threads(t);
      std::vector<double> got(static_cast<std::size_t>(s.m) * s.n);
      for (std::size_t i = 0; i < got.size(); ++i)
        got[i] = (i % 3 == 0) ? nan : (i % 3 == 1 ? inf : -inf);
      dgemm(Trans::No, Trans::No, s.m, s.n, s.k, 1.0, a.data(), s.m, b.data(),
            s.k, 0.0, got.data(), s.m);
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_TRUE(std::isfinite(got[i]))
            << "m=" << s.m << " i=" << i << " T=" << t;
      EXPECT_LT(testref::max_diff(s.m, s.n, got.data(), s.m, want.data(), s.m),
                1e-10 * (s.k + 1));
    }
  }
  // alpha == 0, beta == 0 must produce exact zeros without reading C.
  std::vector<double> z(64, nan);
  dgemm(Trans::No, Trans::No, 8, 8, 4, 0.0, z.data(), 8, z.data(), 8, 0.0,
        z.data(), 8);
  for (double v : z) ASSERT_EQ(v, 0.0);
}

// ------------------------------------------------------------------ dtrsm

struct ThreadedTrsmCase {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
  int m, n;
  double alpha;
};

class ThreadedTrsm : public ::testing::TestWithParam<ThreadedTrsmCase> {};

TEST_P(ThreadedTrsm, TeamSizesAgreeBitwiseAndSolveHolds) {
  TeamGuard guard;
  const auto c = GetParam();
  const int na = (c.side == Side::Left) ? c.m : c.n;
  Rand rng(static_cast<std::uint64_t>(na * 31 + c.m * 7 + c.n));
  const int lda = na + 2;
  const int ldb = c.m + 1;
  auto a = rng.matrix(na, na, lda);
  // Shrink off-diagonal mass so op(A)'s condition number stays O(1) even
  // at na = 256 — unit-diagonal triangles with O(1) entries are
  // exponentially ill-conditioned and would drown the check in legitimate
  // rounding error.
  for (int j = 0; j < na; ++j)
    for (int i = 0; i < na; ++i)
      if (i != j) a[static_cast<std::size_t>(j) * lda + i] /= na;
  testref::dominate_diagonal(na, a.data(), lda);
  auto b0 = rng.matrix(c.m, c.n, ldb);

  // Dense triangle for the multiply-back check.
  std::vector<double> tri(static_cast<std::size_t>(na) * na, 0.0);
  for (int j = 0; j < na; ++j)
    for (int i = 0; i < na; ++i) {
      const bool stored = (c.uplo == Uplo::Lower) ? i >= j : i <= j;
      double v = stored ? a[static_cast<std::size_t>(j) * lda + i] : 0.0;
      if (i == j) v = (c.diag == Diag::Unit) ? 1.0 : v;
      tri[static_cast<std::size_t>(j) * na + i] = v;
    }

  std::vector<double> single;
  for (int t : kTeams) {
    set_num_threads(t);
    auto x = b0;
    dtrsm(c.side, c.uplo, c.trans, c.diag, c.m, c.n, c.alpha, a.data(), lda,
          x.data(), ldb);
    if (t == 1) {
      single = x;
      // Multiply back: op(A)·X (Left) or X·op(A) (Right) == alpha·B.
      std::vector<double> prod(static_cast<std::size_t>(c.m) * c.n, 0.0);
      if (c.side == Side::Left) {
        testref::ref_gemm(c.trans, Trans::No, c.m, c.n, c.m, 1.0, tri.data(),
                          na, x.data(), ldb, 0.0, prod.data(), c.m);
      } else {
        testref::ref_gemm(Trans::No, c.trans, c.m, c.n, c.n, 1.0, x.data(),
                          ldb, tri.data(), na, 0.0, prod.data(), c.m);
      }
      double err = 0.0;
      for (int j = 0; j < c.n; ++j)
        for (int i = 0; i < c.m; ++i)
          err = std::max(err,
                         std::fabs(prod[static_cast<std::size_t>(j) * c.m + i] -
                                   c.alpha *
                                       b0[static_cast<std::size_t>(j) * ldb + i]));
      EXPECT_LT(err, 1e-9 * (na + 1));
    } else {
      for (int j = 0; j < c.n; ++j)
        for (int i = 0; i < c.m; ++i) {
          const std::size_t idx =
              static_cast<std::size_t>(j) * ldb + static_cast<std::size_t>(i);
          ASSERT_EQ(single[idx], x[idx])
              << "bitwise mismatch at (" << i << "," << j << ") T=" << t;
        }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SidesAndShapes, ThreadedTrsm,
    ::testing::Values(
        // HPL's U-solve shape: unit lower, team-eligible width, m past the
        // blocked-path cutoff.
        ThreadedTrsmCase{Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 256,
                         192, 1.0},
        ThreadedTrsmCase{Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit,
                         100, 96, -1.0},
        ThreadedTrsmCase{Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit,
                         96, 80, 1.0},
        ThreadedTrsmCase{Side::Left, Uplo::Lower, Trans::Yes, Diag::NonUnit,
                         80, 64, 2.0},
        ThreadedTrsmCase{Side::Left, Uplo::Upper, Trans::Yes, Diag::Unit, 64,
                         96, 1.0},
        ThreadedTrsmCase{Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit,
                         96, 256, 1.0},
        ThreadedTrsmCase{Side::Right, Uplo::Lower, Trans::Yes, Diag::Unit,
                         128, 72, -0.5},
        // Degenerate and tiny shapes stay on the serial path.
        ThreadedTrsmCase{Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1, 1,
                         1.0},
        ThreadedTrsmCase{Side::Right, Uplo::Upper, Trans::No, Diag::Unit, 7,
                         5, 0.0}));

TEST(ThreadedTrsmEdge, ExternalTeamInstallAndDetach) {
  // set_thread_team with a caller-owned team must behave like
  // set_num_threads, and detaching must return to sequential.
  ThreadTeam team(3);
  set_thread_team(&team);
  EXPECT_EQ(thread_count(), 3);

  Rand rng(11);
  const int m = 512, n = 256, k = 64;
  auto a = rng.matrix(m, k, m);
  auto b = rng.matrix(k, n, k);
  auto c0 = rng.matrix(m, n, m);

  auto teamed = c0;
  dgemm(Trans::No, Trans::No, m, n, k, -1.0, a.data(), m, b.data(), k, 1.0,
        teamed.data(), m);

  set_thread_team(nullptr);
  EXPECT_EQ(thread_count(), 1);
  auto serial = c0;
  dgemm(Trans::No, Trans::No, m, n, k, -1.0, a.data(), m, b.data(), k, 1.0,
        serial.data(), m);

  for (std::size_t i = 0; i < serial.size(); ++i)
    ASSERT_EQ(serial[i], teamed[i]);
}

}  // namespace
}  // namespace hplx::blas
