#include <gtest/gtest.h>
#include <cmath>

#include <tuple>
#include <vector>

#include "blas/blas.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::blas {
namespace {

using testref::Rand;

/// dgemm vs the naive triple loop across shapes, transposes and scalings.
struct GemmCase {
  Trans ta, tb;
  int m, n, k;
  double alpha, beta;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const auto c = GetParam();
  Rand rng(static_cast<std::uint64_t>(c.m * 7919 + c.n * 104729 + c.k));
  const int lda = (c.ta == Trans::No ? c.m : c.k) + 3;
  const int ldb = (c.tb == Trans::No ? c.k : c.n) + 2;
  const int ldc = c.m + 1;
  auto a = rng.matrix(c.ta == Trans::No ? c.m : c.k,
                      c.ta == Trans::No ? c.k : c.m, lda);
  auto b = rng.matrix(c.tb == Trans::No ? c.k : c.n,
                      c.tb == Trans::No ? c.n : c.k, ldb);
  auto c0 = rng.matrix(c.m, c.n, ldc);
  auto got = c0;
  auto want = c0;

  dgemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(), ldb,
        c.beta, got.data(), ldc);
  testref::ref_gemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                    b.data(), ldb, c.beta, want.data(), ldc);

  EXPECT_LT(testref::max_diff(c.m, c.n, got.data(), ldc, want.data(), ldc),
            1e-10 * (c.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndFlags, GemmSweep,
    ::testing::Values(
        GemmCase{Trans::No, Trans::No, 1, 1, 1, 1.0, 0.0},
        GemmCase{Trans::No, Trans::No, 5, 7, 3, 1.0, 0.0},
        GemmCase{Trans::No, Trans::No, 64, 64, 64, 1.0, 1.0},
        // Sizes straddling the blocking parameters (128/256/512).
        GemmCase{Trans::No, Trans::No, 130, 100, 300, 1.0, 1.0},
        GemmCase{Trans::No, Trans::No, 257, 33, 129, 1.0, 0.0},
        GemmCase{Trans::No, Trans::No, 40, 520, 17, 1.0, -1.0},
        // The trailing-update shape: C -= L * U.
        GemmCase{Trans::No, Trans::No, 96, 80, 32, -1.0, 1.0},
        GemmCase{Trans::Yes, Trans::No, 30, 40, 20, 1.0, 0.0},
        GemmCase{Trans::No, Trans::Yes, 30, 40, 20, 2.0, 0.5},
        GemmCase{Trans::Yes, Trans::Yes, 25, 25, 25, -0.5, 2.0},
        GemmCase{Trans::No, Trans::No, 8, 8, 0, 1.0, 2.0}));

TEST(Dgemm, BetaZeroOverwritesNans) {
  std::vector<double> a{1.0};
  std::vector<double> b{1.0};
  std::vector<double> c{std::nan("")};
  dgemm(Trans::No, Trans::No, 1, 1, 1, 1.0, a.data(), 1, b.data(), 1, 0.0,
        c.data(), 1);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

TEST(Dgemm, AlphaZeroOnlyScalesC) {
  Rand rng;
  auto a = rng.matrix(4, 4, 4);
  auto b = rng.matrix(4, 4, 4);
  std::vector<double> c(16, 2.0);
  dgemm(Trans::No, Trans::No, 4, 4, 4, 0.0, a.data(), 4, b.data(), 4, 0.5,
        c.data(), 4);
  for (double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

/// dtrsm: solve, multiply back, compare against the original RHS — covers
/// every side/uplo/trans/diag combination HPL touches and more.
struct TrsmCase {
  Side side;
  Uplo uplo;
  Trans trans;
  Diag diag;
  int m, n;
  double alpha;
};

class TrsmSweep : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(TrsmSweep, SolveThenMultiplyRoundTrips) {
  const auto c = GetParam();
  const int na = (c.side == Side::Left) ? c.m : c.n;
  Rand rng(static_cast<std::uint64_t>(na * 31 + c.m * 17 + c.n));
  auto a = rng.matrix(na, na, na);
  testref::dominate_diagonal(na, a.data(), na);
  auto b0 = rng.matrix(c.m, c.n, c.m);
  auto x = b0;

  dtrsm(c.side, c.uplo, c.trans, c.diag, c.m, c.n, c.alpha, a.data(), na,
        x.data(), c.m);

  // Reconstruct op(T) densely.
  std::vector<double> t(static_cast<std::size_t>(na) * na, 0.0);
  for (int j = 0; j < na; ++j)
    for (int i = 0; i < na; ++i) {
      const bool stored = (c.uplo == Uplo::Lower) ? i >= j : i <= j;
      if (!stored) continue;
      double v = a[static_cast<std::size_t>(j) * na + i];
      if (c.diag == Diag::Unit && i == j) v = 1.0;
      // op(T)(r, c') position depends on trans.
      const int r = (c.trans == Trans::No) ? i : j;
      const int cc = (c.trans == Trans::No) ? j : i;
      t[static_cast<std::size_t>(cc) * na + r] = v;
    }

  // y = op(T)*X (Left) or X*op(T) (Right); expect alpha * B0.
  std::vector<double> y(static_cast<std::size_t>(c.m) * c.n, 0.0);
  if (c.side == Side::Left) {
    testref::ref_gemm(Trans::No, Trans::No, c.m, c.n, c.m, 1.0, t.data(), na,
                      x.data(), c.m, 0.0, y.data(), c.m);
  } else {
    testref::ref_gemm(Trans::No, Trans::No, c.m, c.n, c.n, 1.0, x.data(), c.m,
                      t.data(), na, 0.0, y.data(), c.m);
  }
  for (auto& v : b0) v *= c.alpha;
  EXPECT_LT(testref::max_diff(c.m, c.n, y.data(), c.m, b0.data(), c.m),
            1e-9 * (na + 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, TrsmSweep,
    ::testing::Values(
        // The HPL U-update shape: Left/Lower/NoTrans/Unit.
        TrsmCase{Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 32, 100, 1.0},
        TrsmCase{Side::Left, Uplo::Lower, Trans::No, Diag::NonUnit, 17, 9, 1.0},
        TrsmCase{Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, 21, 13, 1.0},
        TrsmCase{Side::Left, Uplo::Upper, Trans::No, Diag::Unit, 8, 8, -2.0},
        TrsmCase{Side::Left, Uplo::Lower, Trans::Yes, Diag::NonUnit, 19, 5, 1.0},
        TrsmCase{Side::Left, Uplo::Upper, Trans::Yes, Diag::Unit, 11, 23, 0.5},
        TrsmCase{Side::Right, Uplo::Upper, Trans::No, Diag::NonUnit, 9, 15, 1.0},
        TrsmCase{Side::Right, Uplo::Lower, Trans::No, Diag::Unit, 14, 6, 1.0},
        TrsmCase{Side::Right, Uplo::Upper, Trans::Yes, Diag::NonUnit, 7, 12, -1.0},
        TrsmCase{Side::Right, Uplo::Lower, Trans::Yes, Diag::NonUnit, 13, 13, 1.0},
        TrsmCase{Side::Left, Uplo::Lower, Trans::No, Diag::Unit, 1, 1, 1.0}));

}  // namespace
}  // namespace hplx::blas
