#pragma once
/// Naive reference implementations and random fixtures shared by the BLAS
/// tests. Deliberately written as triple loops with no blocking so they
/// cannot share bugs with the library under test.

#include <cstdint>
#include <vector>

#include "blas/blas.hpp"

namespace hplx::testref {

/// Deterministic pseudo-random doubles in [-1, 1) (xorshift; independent
/// of the library's LCG so rng bugs cannot mask blas bugs).
class Rand {
 public:
  explicit Rand(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : s_(seed) {}
  double next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return static_cast<double>(static_cast<std::int64_t>(s_)) * 0x1.0p-63;
  }
  std::vector<double> matrix(int rows, int cols, int ld) {
    std::vector<double> a(static_cast<std::size_t>(ld) * cols);
    for (int j = 0; j < cols; ++j)
      for (int i = 0; i < rows; ++i)
        a[static_cast<std::size_t>(j) * ld + i] = next();
    return a;
  }

 private:
  std::uint64_t s_;
};

inline void ref_gemm(hplx::blas::Trans ta, hplx::blas::Trans tb, int m, int n,
                     int k, double alpha, const double* a, int lda,
                     const double* b, int ldb, double beta, double* c,
                     int ldc) {
  using hplx::blas::Trans;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const double av = (ta == Trans::No) ? a[p * lda + i] : a[i * lda + p];
        const double bv = (tb == Trans::No) ? b[j * ldb + p] : b[p * ldb + j];
        acc += av * bv;
      }
      c[j * ldc + i] = alpha * acc + beta * c[j * ldc + i];
    }
  }
}

/// Max elementwise |x - y| over an m×n pair of matrices.
inline double max_diff(int m, int n, const double* x, int ldx,
                       const double* y, int ldy) {
  double d = 0.0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      const double v = x[j * ldx + i] - y[j * ldy + i];
      d = std::max(d, v < 0 ? -v : v);
    }
  return d;
}

/// Make the diagonal dominant so triangular solves stay well conditioned.
inline void dominate_diagonal(int n, double* a, int lda) {
  for (int i = 0; i < n; ++i) a[i * lda + i] += (a[i * lda + i] < 0 ? -4.0 : 4.0);
}

}  // namespace hplx::testref
