#include <gtest/gtest.h>
#include <cmath>

#include <vector>

#include "blas/blas.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::blas {
namespace {

using testref::Rand;

TEST(Dger, RankOneUpdate) {
  // A = zeros(2,3); A += 2 * x y^T.
  std::vector<double> a(6, 0.0);
  std::vector<double> x{1, 2};
  std::vector<double> y{3, 4, 5};
  dger(2, 3, 2.0, x.data(), 1, y.data(), 1, a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 6.0);   // (0,0) = 2*1*3
  EXPECT_DOUBLE_EQ(a[1], 12.0);  // (1,0) = 2*2*3
  EXPECT_DOUBLE_EQ(a[4], 10.0);  // (0,2) = 2*1*5
  EXPECT_DOUBLE_EQ(a[5], 20.0);  // (1,2)
}

TEST(Dger, AlphaZeroNoop) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> x{9, 9};
  std::vector<double> y{9, 9};
  dger(2, 2, 0.0, x.data(), 1, y.data(), 1, a.data(), 2);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[3], 4.0);
}

TEST(Dgemv, NoTransMatchesManual) {
  // A = [1 3; 2 4] colmajor {1,2,3,4}; y = 1*A*x + 0*y.
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> x{5, 6};
  std::vector<double> y(2, -1.0);
  dgemv(Trans::No, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1 * 5 + 3 * 6);
  EXPECT_DOUBLE_EQ(y[1], 2 * 5 + 4 * 6);
}

TEST(Dgemv, TransMatchesManual) {
  std::vector<double> a{1, 2, 3, 4};
  std::vector<double> x{5, 6};
  std::vector<double> y(2, 0.0);
  dgemv(Trans::Yes, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1 * 5 + 2 * 6);
  EXPECT_DOUBLE_EQ(y[1], 3 * 5 + 4 * 6);
}

TEST(Dgemv, BetaScalesExisting) {
  std::vector<double> a{1, 0, 0, 1};  // identity
  std::vector<double> x{2, 3};
  std::vector<double> y{10, 20};
  dgemv(Trans::No, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.5, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 7.0);   // 2 + 5
  EXPECT_DOUBLE_EQ(y[1], 13.0);  // 3 + 10
}

TEST(Dgemv, BetaZeroOverwritesGarbage) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> x{1, 1};
  std::vector<double> y{std::nan(""), std::nan("")};
  dgemv(Trans::No, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

/// Property: dtrsv really inverts the triangular multiply, for all
/// uplo/trans/diag combinations.
struct TrsvCase {
  Uplo uplo;
  Trans trans;
  Diag diag;
  int n;
};

class TrsvSweep : public ::testing::TestWithParam<TrsvCase> {};

TEST_P(TrsvSweep, SolveThenMultiplyRoundTrips) {
  const auto c = GetParam();
  Rand rng(static_cast<std::uint64_t>(c.n) * 131 + 7);
  auto a = rng.matrix(c.n, c.n, c.n);
  testref::dominate_diagonal(c.n, a.data(), c.n);

  std::vector<double> x(static_cast<std::size_t>(c.n));
  for (auto& v : x) v = rng.next();
  std::vector<double> b = x;

  dtrsv(c.uplo, c.trans, c.diag, c.n, a.data(), c.n, b.data(), 1);

  // Multiply back: y = op(T) * b where T is the triangle actually used.
  std::vector<double> y(static_cast<std::size_t>(c.n), 0.0);
  for (int i = 0; i < c.n; ++i) {
    for (int j = 0; j < c.n; ++j) {
      const bool in_lower = i >= j;
      const bool stored = (c.uplo == Uplo::Lower) ? in_lower : i <= j;
      if (!stored) continue;
      double t = a[static_cast<std::size_t>(j) * c.n + i];
      if (c.diag == Diag::Unit && i == j) t = 1.0;
      if (c.trans == Trans::No) {
        y[static_cast<std::size_t>(i)] += t * b[static_cast<std::size_t>(j)];
      } else {
        y[static_cast<std::size_t>(j)] += t * b[static_cast<std::size_t>(i)];
      }
    }
  }
  for (int i = 0; i < c.n; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)],
                1e-9)
        << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, TrsvSweep,
    ::testing::Values(
        TrsvCase{Uplo::Lower, Trans::No, Diag::NonUnit, 1},
        TrsvCase{Uplo::Lower, Trans::No, Diag::NonUnit, 17},
        TrsvCase{Uplo::Lower, Trans::No, Diag::Unit, 33},
        TrsvCase{Uplo::Upper, Trans::No, Diag::NonUnit, 17},
        TrsvCase{Uplo::Upper, Trans::No, Diag::Unit, 8},
        TrsvCase{Uplo::Lower, Trans::Yes, Diag::NonUnit, 17},
        TrsvCase{Uplo::Upper, Trans::Yes, Diag::NonUnit, 17},
        TrsvCase{Uplo::Upper, Trans::Yes, Diag::Unit, 21}));

}  // namespace
}  // namespace hplx::blas
