#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"
#include "tests/blas/reference.hpp"

namespace hplx::blas {
namespace {

TEST(Idamax, FindsLargestMagnitude) {
  std::vector<double> x{1.0, -7.5, 3.0, 7.4};
  EXPECT_EQ(idamax(4, x.data(), 1), 1);
}

TEST(Idamax, FirstOfTies) {
  std::vector<double> x{2.0, -2.0, 2.0};
  EXPECT_EQ(idamax(3, x.data(), 1), 0);
}

TEST(Idamax, EmptyReturnsMinusOne) {
  EXPECT_EQ(idamax(0, nullptr, 1), -1);
}

TEST(Idamax, StridedAccess) {
  // Logical vector is elements 0, 2, 4: {1, 5, 3}.
  std::vector<double> x{1.0, 99.0, 5.0, 99.0, 3.0};
  EXPECT_EQ(idamax(3, x.data(), 2), 1);
}

TEST(Dswap, SwapsStrided) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{9, 8, 7, 6};
  dswap(2, x.data(), 2, y.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], 9.0);
  EXPECT_DOUBLE_EQ(x[2], 8.0);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);  // untouched
}

TEST(Dscal, Scales) {
  std::vector<double> x{1, -2, 3};
  dscal(3, -2.0, x.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], -6.0);
}

TEST(Daxpy, Accumulates) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  daxpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Daxpy, AlphaZeroLeavesY) {
  std::vector<double> x{1, 2};
  std::vector<double> y{5, 6};
  daxpy(2, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Dcopy, CopiesStrided) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y(2, 0.0);
  dcopy(2, x.data(), 2, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(Ddot, InnerProduct) {
  std::vector<double> x{1, 2, 3};
  std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(ddot(3, x.data(), 1, y.data(), 1), 32.0);
}

class IdamaxSweep : public ::testing::TestWithParam<int> {};

TEST_P(IdamaxSweep, MatchesLinearScan) {
  const int n = GetParam();
  testref::Rand rng(static_cast<std::uint64_t>(n) * 977 + 1);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.next();
  const int got = idamax(n, x.data(), 1);
  int want = 0;
  for (int i = 1; i < n; ++i)
    if (std::fabs(x[static_cast<std::size_t>(i)]) >
        std::fabs(x[static_cast<std::size_t>(want)]))
      want = i;
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IdamaxSweep,
                         ::testing::Values(1, 2, 3, 7, 64, 255, 1000));

}  // namespace
}  // namespace hplx::blas
