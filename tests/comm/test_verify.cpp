/// Adversarial injection suite for the comm verifier: every checker kind
/// is provoked on purpose (mismatched collectives, reserved tags, orphaned
/// messages, real deadlocks) and must produce exactly the expected
/// violation records — plus clean full-pipeline solves that must produce
/// none. The deadlock cases rely on the verifier to abort the run; if the
/// checker regresses they hang until the suite's ctest timeout.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/verify.hpp"
#include "comm/world.hpp"
#include "core/driver.hpp"
#include "util/error.hpp"

namespace hplx::comm {
namespace {

/// Tight deadlock-detection knobs so the abort paths fire in test time.
/// `timeout` stays well above `grace` so the stable-cycle path (not the
/// hard watchdog) is what a full-cycle test exercises.
Verifier::Config fast_config(int timeout_ms = 10000) {
  Verifier::Config cfg;
  cfg.poll = std::chrono::milliseconds(5);
  cfg.grace = std::chrono::milliseconds(50);
  cfg.timeout = std::chrono::milliseconds(timeout_ms);
  return cfg;
}

// ---------------------------------------------------- collective matching

TEST(CommVerify, BcastRootMismatchIsRecordedAndLeaksSurface) {
  std::shared_ptr<Verifier> v;
  World::run(2, [&](Communicator& comm) {
    comm.fabric().enable_verifier(Verifier::Config{});
    if (comm.rank() == 0) v = comm.fabric().verifier_shared();
    // Both ranks believe they are the root: both send, neither receives.
    // The descriptor comparison catches the root skew immediately and the
    // unconsumed payloads surface as comm-level leaks at fabric teardown.
    double x = static_cast<double>(comm.rank());
    bcast(comm, &x, 1, /*root=*/comm.rank(), BcastAlgo::Binomial);
  });
  ASSERT_TRUE(v);
  EXPECT_GE(v->count_of(Verifier::Kind::CollectiveMismatch), 1u);
  EXPECT_GE(v->count_of(Verifier::Kind::OrphanMessage), 1u);
  EXPECT_EQ(v->count_of(Verifier::Kind::Deadlock), 0u);
  EXPECT_FALSE(v->format_report().empty());
}

TEST(CommVerify, AllreduceCountSkewOnSplitComm) {
  // Color 0 (world ranks 0 and 2) disagree on the reduction length; color
  // 1 runs a matching allreduce and must stay clean. The skew is caught
  // twice: as a descriptor mismatch on the child fabric and as a p2p size
  // mismatch when the wrong-length payload matches. The short hard timeout
  // rescues any rank left blocked by its peer's exception.
  std::shared_ptr<Verifier> v;
  EXPECT_THROW(
      World::run(4,
                 [&](Communicator& world) {
                   world.fabric().enable_verifier(fast_config(1500));
                   Communicator half =
                       world.split(world.rank() % 2, world.rank());
                   if (world.rank() == 0)
                     v = half.fabric().verifier_shared();
                   const std::size_t count =
                       world.rank() % 2 == 0 ? (world.rank() == 0 ? 1 : 2)
                                             : 3;
                   std::vector<double> buf(count, 1.0);
                   allreduce(half, buf.data(), buf.size(), ReduceOp::Sum);
                 }),
      hplx::Error);
  ASSERT_TRUE(v);
  EXPECT_GE(v->count_of(Verifier::Kind::CollectiveMismatch), 1u);
  EXPECT_GE(v->count_of(Verifier::Kind::P2PSizeMismatch), 1u);
}

TEST(CommVerify, MatchingCollectivesAcrossKindsStayClean) {
  std::shared_ptr<Verifier> v;
  World::run(3, [&](Communicator& comm) {
    comm.fabric().enable_verifier(Verifier::Config{});
    if (comm.rank() == 0) v = comm.fabric().verifier_shared();
    barrier(comm);
    std::vector<double> x(4, comm.rank() == 1 ? 7.0 : 0.0);
    bcast(comm, x.data(), x.size(), /*root=*/1);
    for (double d : x) {
      EXPECT_EQ(d, 7.0);
    }
    double s = 1.0;
    allreduce(comm, &s, 1, ReduceOp::Sum);
    EXPECT_EQ(s, 3.0);
    const int mine = comm.rank() * 10;
    std::vector<int> gathered(3, -1);
    gather_bytes(comm, &mine, sizeof mine,
                 comm.rank() == 0 ? gathered.data() : nullptr, /*root=*/0);
    if (comm.rank() == 0) {
      EXPECT_EQ(gathered, (std::vector<int>{0, 10, 20}));
    }
  });
  ASSERT_TRUE(v);
  EXPECT_EQ(v->violation_count(), 0u);
  EXPECT_TRUE(v->format_report().empty());
}

// --------------------------------------------------------- tag contract

TEST(CommVerify, ReservedAndNegativeTagsAreRecordedBeforeThrow) {
  std::shared_ptr<Verifier> v;
  World::run(2, [&](Communicator& comm) {
    comm.fabric().enable_verifier(Verifier::Config{});
    if (comm.rank() == 0) {
      v = comm.fabric().verifier_shared();
      double x = 1.0;
      // Every p2p entry point enforces the user-tag contract and records
      // the misuse before the hard check throws.
      EXPECT_THROW(comm.send(&x, 1, 1, kMaxUserTag), hplx::Error);
      EXPECT_THROW(comm.recv(&x, 1, 1, kMaxUserTag + 5), hplx::Error);
      EXPECT_THROW(comm.iprobe(1, kMaxUserTag), hplx::Error);
      EXPECT_THROW(comm.try_recv_bytes(&x, sizeof x, 1, -1), hplx::Error);
    }
    barrier(comm);
    // The boundary value below the reserved range is legal.
    if (comm.rank() == 0) {
      double y = 2.0;
      comm.send(&y, 1, 1, kMaxUserTag - 1);
    } else {
      double y = 0.0;
      comm.recv(&y, 1, 0, kMaxUserTag - 1);
      EXPECT_EQ(y, 2.0);
    }
  });
  ASSERT_TRUE(v);
  EXPECT_EQ(v->count_of(Verifier::Kind::ReservedTag), 4u);
  EXPECT_EQ(v->distinct_of(Verifier::Kind::ReservedTag), 4u);
  EXPECT_EQ(v->violation_count(), 4u);  // the legal boundary send is clean
}

TEST(CommVerify, RecordCapTruncationIsCountedAndSurfaced) {
  // Past the distinct-record cap, new sites lose their labels but never
  // their counts: a synthetic records-truncated entry carries the excess
  // so totals and the report table stay exact.
  Fabric fabric(1);
  fabric.enable_verifier(Verifier::Config{});
  std::shared_ptr<Verifier> v = fabric.verifier_shared();
  ASSERT_TRUE(v);
  constexpr int kDistinct = 300;  // cap is 256
  for (int t = 0; t < kDistinct; ++t) v->on_reserved_tag(0, -1000 - t, "send");
  EXPECT_EQ(v->violation_count(), static_cast<std::uint64_t>(kDistinct));
  EXPECT_EQ(v->count_of(Verifier::Kind::ReservedTag), 256u);
  EXPECT_EQ(v->count_of(Verifier::Kind::Truncated),
            static_cast<std::uint64_t>(kDistinct - 256));
  const auto recs = v->report();
  ASSERT_EQ(recs.size(), 257u);
  EXPECT_EQ(recs.back().kind, static_cast<int>(Verifier::Kind::Truncated));
  EXPECT_EQ(recs.back().count, static_cast<std::uint64_t>(kDistinct - 256));
  EXPECT_NE(v->format_report().find("record cap"), std::string::npos);
  // A repeat of an already-tracked site still dedups into its record.
  v->on_reserved_tag(0, -1000, "send");
  EXPECT_EQ(v->violation_count(), static_cast<std::uint64_t>(kDistinct + 1));
  EXPECT_EQ(v->report().size(), 257u);
}

TEST(CommVerify, ZeroAndMalformedEnvKnobs) {
  // 0 is a legal override (report immediately); malformed values keep the
  // default instead of being half-parsed.
  ASSERT_EQ(setenv("HPLX_COMM_GRACE_MS", "0", 1), 0);
  ASSERT_EQ(setenv("HPLX_COMM_TIMEOUT_MS", "junk", 1), 0);
  const Verifier::Config cfg = Verifier::Config::from_env();
  EXPECT_EQ(cfg.grace.count(), 0);
  EXPECT_EQ(cfg.timeout.count(), Verifier::Config{}.timeout.count());
  unsetenv("HPLX_COMM_GRACE_MS");
  unsetenv("HPLX_COMM_TIMEOUT_MS");
}

// ---------------------------------------------------------- leak detection

TEST(CommVerify, UnreceivedMessageIsReportedAtFabricTeardown) {
  std::shared_ptr<Verifier> v;
  World::run(2, [&](Communicator& comm) {
    comm.fabric().enable_verifier(Verifier::Config{});
    if (comm.rank() == 0) {
      v = comm.fabric().verifier_shared();
      const int payload[3] = {1, 2, 3};
      comm.send(payload, 3, 1, /*tag=*/42);  // rank 1 never receives it
    }
  });
  // ~Fabric ran the orphan audit; the verifier outlives it via the shared
  // handle so the record is still inspectable here.
  ASSERT_TRUE(v);
  EXPECT_EQ(v->count_of(Verifier::Kind::OrphanMessage), 1u);
  EXPECT_EQ(v->violation_count(), 1u);
}

TEST(CommVerify, BarrierTokensAreNotOrphans) {
  // A rank exits a dissemination barrier as soon as its own tokens are in;
  // tokens between two other ranks may still be queued. Those must never
  // be reported as leaks — a clean barrier-only run has zero violations.
  std::shared_ptr<Verifier> v;
  World::run(5, [&](Communicator& comm) {
    comm.fabric().enable_verifier(Verifier::Config{});
    if (comm.rank() == 0) v = comm.fabric().verifier_shared();
    for (int i = 0; i < 8; ++i) barrier(comm);
  });
  ASSERT_TRUE(v);
  EXPECT_EQ(v->violation_count(), 0u);
}

// ------------------------------------------------------ deadlock detection

TEST(CommVerify, RecvRecvCycleIsDetectedAndAborted) {
  std::shared_ptr<Verifier> v;
  std::atomic<int> aborted{0};
  EXPECT_THROW(
      World::run(2,
                 [&](Communicator& comm) {
                   comm.fabric().enable_verifier(fast_config());
                   if (comm.rank() == 0)
                     v = comm.fabric().verifier_shared();
                   double x = 0.0;
                   try {
                     // Classic head-to-head: both ranks receive first.
                     comm.recv(&x, 1, 1 - comm.rank(), 7);
                   } catch (const hplx::Error&) {
                     ++aborted;
                     throw;
                   }
                 }),
      hplx::Error);
  // The stable-cycle detector must wake and abort BOTH blocked ranks —
  // the detector itself and the peer it interrupts.
  EXPECT_EQ(aborted.load(), 2);
  ASSERT_TRUE(v);
  EXPECT_GE(v->count_of(Verifier::Kind::Deadlock), 1u);
}

TEST(CommVerify, SplitAgainstBarrierIsMismatchThenDeadlock) {
  // Rank 0 enters split (a collective that can never complete alone) while
  // rank 1 enters barrier: the kind skew is recorded from the shared
  // descriptor table, then both ranks wedge — rank 0 waiting on the split
  // rendezvous, rank 1 on a barrier token that will never come. The cycle
  // detector must see the split waiter (which no message can unstick) as
  // blocked and abort both.
  std::shared_ptr<Verifier> v;
  std::atomic<int> aborted{0};
  EXPECT_THROW(
      World::run(2,
                 [&](Communicator& comm) {
                   comm.fabric().enable_verifier(fast_config());
                   if (comm.rank() == 0)
                     v = comm.fabric().verifier_shared();
                   try {
                     if (comm.rank() == 0) {
                       Communicator child = comm.split(0, 0);
                     } else {
                       barrier(comm);
                     }
                   } catch (const hplx::Error&) {
                     ++aborted;
                     throw;
                   }
                 }),
      hplx::Error);
  EXPECT_EQ(aborted.load(), 2);
  ASSERT_TRUE(v);
  EXPECT_GE(v->count_of(Verifier::Kind::CollectiveMismatch), 1u);
  EXPECT_GE(v->count_of(Verifier::Kind::Deadlock), 1u);
}

TEST(CommVerify, LoneBlockedReceiveHitsTheHardTimeout) {
  // One rank receives from a peer that never sends while the other rank
  // exits immediately: no full cycle ever forms (blocked count stays below
  // fabric size), so only the hard watchdog can rescue the run.
  std::shared_ptr<Verifier> v;
  EXPECT_THROW(
      World::run(2,
                 [&](Communicator& comm) {
                   comm.fabric().enable_verifier(fast_config(400));
                   if (comm.rank() == 0) {
                     v = comm.fabric().verifier_shared();
                     double x = 0.0;
                     comm.recv(&x, 1, 1, 3);  // rank 1 never sends
                   }
                 }),
      hplx::Error);
  ASSERT_TRUE(v);
  EXPECT_GE(v->count_of(Verifier::Kind::Deadlock), 1u);
}

// ------------------------------------------------- eager-send semantics

TEST(CommVerify, SymmetricSendrecvExchangeCannotDeadlock) {
  // Pins the contract sendrecv's documentation promises: the send half
  // completes before the receive starts even when both payloads exceed
  // the direct-delivery threshold (no receive is posted yet on either
  // side), so a symmetric exchange is deadlock-free. The tight verifier
  // knobs turn a regression into a fast abort instead of a hang.
  std::shared_ptr<Verifier> v;
  World::run(2, [&](Communicator& comm) {
    comm.fabric().enable_verifier(fast_config());
    if (comm.rank() == 0) v = comm.fabric().verifier_shared();
    const int peer = 1 - comm.rank();
    const std::size_t n = (256 * 1024) / sizeof(double);  // >> eager cutoff
    std::vector<double> out(n, comm.rank() + 1.0);
    std::vector<double> in(n, 0.0);
    comm.sendrecv(out.data(), out.size(), peer, 9, in.data(), in.size(),
                  peer, 9);
    EXPECT_EQ(in, std::vector<double>(n, peer + 1.0));
    barrier(comm);
  });
  ASSERT_TRUE(v);
  EXPECT_EQ(v->violation_count(), 0u);
}

TEST(CommVerify, IsendIsBufferedEagerAndSafeToReuse) {
  std::shared_ptr<Verifier> v;
  World::run(2, [&](Communicator& comm) {
    comm.fabric().enable_verifier(Verifier::Config{});
    if (comm.rank() == 0) {
      v = comm.fabric().verifier_shared();
      std::vector<int> x{1, 2, 3};
      Request r = comm.isend(x.data(), x.size(), 1, 4);
      r.wait();               // buffered-eager: already complete
      x.assign(x.size(), 0);  // safe: the payload was copied at isend
    } else {
      std::vector<int> x(3, 0);
      Request r = comm.irecv(x.data(), x.size(), 0, 4);
      r.wait();
      EXPECT_EQ(x, (std::vector<int>{1, 2, 3}));
    }
  });
  ASSERT_TRUE(v);
  EXPECT_EQ(v->violation_count(), 0u);
}

// ------------------------------------------------- end-to-end clean runs

core::HplConfig solve_cfg(long n, int nb, int p, int q) {
  core::HplConfig cfg;
  cfg.n = n;
  cfg.nb = nb;
  cfg.p = p;
  cfg.q = q;
  cfg.seed = 20230601;
  cfg.fact_threads = 2;
  cfg.rfact_nbmin = 8;
  cfg.verify = true;
  cfg.comm_check = true;
  return cfg;
}

core::HplResult run_cfg(const core::HplConfig& cfg) {
  core::HplResult out;
  World::run(cfg.p * cfg.q, [&](Communicator& world) {
    core::HplResult r = core::run_hpl(world, cfg);
    if (world.rank() == 0) out = std::move(r);
  });
  return out;
}

std::string describe(const std::vector<trace::CommViolationRecord>& recs) {
  std::string s;
  for (const auto& r : recs) {
    s += Verifier::kind_name(static_cast<Verifier::Kind>(r.kind));
    s += ": ";
    s += r.op_a;
    s += " | ";
    s += r.detail;
    s += "\n";
  }
  return s;
}

using SweepParam =
    std::tuple<int /*p*/, int /*q*/, core::PipelineMode, core::PrecisionMode,
               core::PivotMode>;

class CommCheckSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CommCheckSweep, FullSolveIsViolationFree) {
  const auto [p, q, mode, prec, piv] = GetParam();
  core::HplConfig cfg = solve_cfg(96, 16, p, q);
  cfg.pipeline = mode;
  cfg.precision = prec;
  cfg.pivoting = piv;
  cfg.diag_dominant = piv == core::PivotMode::None;
  const core::HplResult r = run_cfg(cfg);
  EXPECT_TRUE(r.comm_checked);
  EXPECT_TRUE(r.comm_violations.empty()) << describe(r.comm_violations);
  EXPECT_TRUE(r.verify.passed) << "residual=" << r.verify.residual;
}

INSTANTIATE_TEST_SUITE_P(
    PipelinesPrecisionsGrids, CommCheckSweep,
    ::testing::Values(
        SweepParam{1, 1, core::PipelineMode::Simple,
                   core::PrecisionMode::FP64, core::PivotMode::Full},
        SweepParam{1, 3, core::PipelineMode::Lookahead,
                   core::PrecisionMode::FP64, core::PivotMode::Full},
        SweepParam{3, 1, core::PipelineMode::Simple,
                   core::PrecisionMode::FP64, core::PivotMode::Full},
        SweepParam{2, 2, core::PipelineMode::LookaheadSplit,
                   core::PrecisionMode::FP64, core::PivotMode::Full},
        SweepParam{2, 2, core::PipelineMode::LookaheadSplit,
                   core::PrecisionMode::MXP32, core::PivotMode::Full},
        SweepParam{2, 2, core::PipelineMode::Lookahead,
                   core::PrecisionMode::FP64, core::PivotMode::None}));

TEST(CommCheckSolve, CommAndHazardCheckersComposeCleanly) {
  core::HplConfig cfg = solve_cfg(96, 16, 2, 2);
  cfg.hazard_check = true;
  const core::HplResult r = run_cfg(cfg);
  EXPECT_TRUE(r.comm_checked);
  EXPECT_TRUE(r.hazard_checked);
  EXPECT_TRUE(r.comm_violations.empty()) << describe(r.comm_violations);
  EXPECT_TRUE(r.hazards.empty());
  EXPECT_TRUE(r.verify.passed);
}

TEST(CommCheckSolve, CheckerOffLeavesResultUnchecked) {
  core::HplConfig cfg = solve_cfg(64, 16, 1, 2);
  cfg.comm_check = false;
  const core::HplResult r = run_cfg(cfg);
  EXPECT_FALSE(r.comm_checked);
  EXPECT_TRUE(r.comm_violations.empty());
}

TEST(CommCheckSolve, EnvVarEnablesChecking) {
  ASSERT_EQ(setenv("HPLX_COMM_CHECK", "1", 1), 0);
  EXPECT_TRUE(comm_check_env_enabled());
  core::HplConfig cfg = solve_cfg(64, 16, 1, 2);
  cfg.comm_check = false;  // the env var alone must turn checking on
  const core::HplResult r = run_cfg(cfg);
  EXPECT_TRUE(r.comm_checked);
  EXPECT_TRUE(r.comm_violations.empty()) << describe(r.comm_violations);
  ASSERT_EQ(setenv("HPLX_COMM_CHECK", "0", 1), 0);
  EXPECT_FALSE(comm_check_env_enabled());
  unsetenv("HPLX_COMM_CHECK");
}

}  // namespace
}  // namespace hplx::comm
