#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "comm/world.hpp"
#include "util/error.hpp"

namespace hplx::comm {
namespace {

TEST(World, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::atomic<int> rank_sum{0};
  World::run(5, [&](Communicator& comm) {
    count++;
    rank_sum += comm.rank();
    EXPECT_EQ(comm.size(), 5);
  });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(rank_sum, 0 + 1 + 2 + 3 + 4);
}

TEST(World, FirstExceptionPropagates) {
  EXPECT_THROW(World::run(3, [](Communicator& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 exploded");
  }), std::runtime_error);
}

TEST(World, OtherRanksFinishWhenOneThrowsWithoutComm) {
  std::atomic<int> finished{0};
  try {
    World::run(4, [&](Communicator& comm) {
      if (comm.rank() == 2) throw Error("boom");
      finished++;
    });
    FAIL() << "expected throw";
  } catch (const Error&) {
  }
  EXPECT_EQ(finished, 3);
}

TEST(World, SingleRank) {
  World::run(1, [](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
  });
}

TEST(World, InvalidRankCountRejected) {
  EXPECT_THROW(World::run(0, [](Communicator&) {}), Error);
}

TEST(World, SequentialWorldsAreIndependent) {
  // Traffic from a previous world must not leak into a new one.
  for (int round = 0; round < 3; ++round) {
    World::run(2, [round](Communicator& comm) {
      if (comm.rank() == 0) {
        const int v = round;
        comm.send(&v, 1, 1, 0);
      } else {
        int v = -1;
        comm.recv(&v, 1, 0, 0);
        EXPECT_EQ(v, round);
        EXPECT_EQ(comm.fabric().mailbox(comm.rank()).pending(), 0u);
      }
    });
  }
}

}  // namespace
}  // namespace hplx::comm
