#include <gtest/gtest.h>

#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

TEST(Split, RowColumnDecomposition) {
  // 6 ranks as a 2x3 grid (col-major): row = rank % 2, col = rank / 2.
  World::run(6, [](Communicator& comm) {
    const int row = comm.rank() % 2;
    const int col = comm.rank() / 2;

    Communicator row_comm = comm.split(row, col);
    Communicator col_comm = comm.split(col, row);

    EXPECT_EQ(row_comm.size(), 3);
    EXPECT_EQ(row_comm.rank(), col);
    EXPECT_EQ(col_comm.size(), 2);
    EXPECT_EQ(col_comm.rank(), row);

    // Traffic in the row communicator stays in the row.
    long sum = comm.rank();
    allreduce(row_comm, &sum, 1, ReduceOp::Sum);
    // Ranks in my row: row, row+2, row+4.
    EXPECT_EQ(sum, row * 3 + 0 + 2 + 4);

    long csum = comm.rank();
    allreduce(col_comm, &csum, 1, ReduceOp::Sum);
    // Ranks in my column: 2*col and 2*col+1.
    EXPECT_EQ(csum, 4 * col + 1);
  });
}

TEST(Split, KeyControlsOrdering) {
  World::run(4, [](Communicator& comm) {
    // Reverse rank order within a single color.
    Communicator rev = comm.split(0, -comm.rank());
    EXPECT_EQ(rev.size(), 4);
    EXPECT_EQ(rev.rank(), 3 - comm.rank());
  });
}

TEST(Split, ChildIsolatedFromParentTraffic) {
  World::run(4, [](Communicator& comm) {
    Communicator child = comm.split(comm.rank() % 2, comm.rank());
    // A parent-communicator message with the same tag must not be matched
    // by a child receive: partner ranks differ between the fabrics.
    if (comm.rank() == 0) {
      const int v = 5;
      comm.send(&v, 1, 2, 3);          // parent: world-rank 2
      const int w = 9;
      child.send(&w, 1, 1, 3);         // child of color 0: member {0, 2}
    } else if (comm.rank() == 2) {
      int w = 0;
      child.recv(&w, 1, 0, 3);         // child rank 1 receives from child rank 0
      EXPECT_EQ(w, 9);
      int v = 0;
      comm.recv(&v, 1, 0, 3);
      EXPECT_EQ(v, 5);
    }
  });
}

TEST(Split, DupPreservesGroup) {
  World::run(3, [](Communicator& comm) {
    Communicator copy = comm.dup();
    EXPECT_EQ(copy.size(), comm.size());
    EXPECT_EQ(copy.rank(), comm.rank());
    barrier(copy);
  });
}

TEST(Split, RepeatedSplitsIndependent) {
  World::run(4, [](Communicator& comm) {
    for (int round = 0; round < 5; ++round) {
      Communicator c = comm.split(comm.rank() / 2, comm.rank());
      EXPECT_EQ(c.size(), 2);
      long v = 1;
      allreduce(c, &v, 1, ReduceOp::Sum);
      EXPECT_EQ(v, 2);
    }
  });
}

}  // namespace
}  // namespace hplx::comm
