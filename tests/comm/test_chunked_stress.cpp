/// Stress coverage of comm::allgatherv_chunked — the transport under the
/// pipelined row-swap broadcast. The chunked ring must assemble exactly
/// what the blocking collective assembles, its per-chunk delivery
/// callbacks must tile each remote segment exactly once with
/// grain-aligned, in-order chunks, and many communicators hammering the
/// transport concurrently must not interfere (the suite runs under both
/// TSan and ASan in scripts/check.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

std::uint64_t mix(std::uint64_t s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// Deterministic byte for (segment rank, offset) — every rank can verify
/// every delivered byte without further communication.
char byte_at(int rank, std::size_t off) {
  return static_cast<char>(mix(0xC0FFEEull + static_cast<std::uint64_t>(rank) *
                                                 2654435761u +
                               off) &
                           0x7F);
}

struct Layout {
  std::vector<std::size_t> counts, displs, grains;
  std::size_t total = 0;
};

Layout make_layout(int ranks, std::uint64_t seed, std::size_t grain_base) {
  Layout l;
  for (int r = 0; r < ranks; ++r) {
    const std::uint64_t s = mix(seed + static_cast<std::uint64_t>(r) * 7919u);
    // Segment sizes are grain multiples (the row-swap's segments are whole
    // wire rows/columns); occasionally zero to cover empty contributions.
    const std::size_t units = s % 9;
    const std::size_t grain = grain_base + (s >> 8) % 24;
    l.counts.push_back(units * grain);
    l.grains.push_back(grain);
    l.displs.push_back(l.total);
    l.total += l.counts.back();
  }
  return l;
}

TEST(ChunkedAllgatherv, MatchesBlockingAndTilesSegmentsExactly) {
  const int ranks = 5;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1 << 20}}) {
      const Layout l = make_layout(ranks, 0xA11ull, 16);
      std::vector<char> mine(l.counts[static_cast<std::size_t>(me)]);
      for (std::size_t i = 0; i < mine.size(); ++i)
        mine[i] = byte_at(me, i);

      std::vector<char> blocking(l.total, -1);
      allgatherv_bytes(comm, mine.data(), l.counts, l.displs,
                       blocking.data());

      std::vector<char> chunked(l.total, -1);
      // Per-rank delivered byte spans, to assert the exact tiling.
      std::map<int, std::vector<ChunkDelivery>> delivered;
      allgatherv_chunked(comm, mine.data(), l.counts, l.displs,
                         chunked.data(), chunk, l.grains,
                         [&](const ChunkDelivery& d) {
                           delivered[d.rank].push_back(d);
                           // The delivered range must already hold the
                           // sender's bytes when the callback fires.
                           for (std::size_t k = 0; k < d.bytes; ++k) {
                             const std::size_t off = d.offset + k;
                             ASSERT_EQ(chunked[off],
                                       byte_at(d.rank,
                                               off - l.displs[static_cast<
                                                   std::size_t>(d.rank)]));
                           }
                         });

      ASSERT_EQ(std::memcmp(blocking.data(), chunked.data(), l.total), 0)
          << "chunk=" << chunk;

      // Every non-empty segment is tiled exactly once, in order, on grain
      // boundaries (except the final partial-grain-free tail).
      for (int r = 0; r < ranks; ++r) {
        const std::size_t cnt = l.counts[static_cast<std::size_t>(r)];
        const std::size_t displ = l.displs[static_cast<std::size_t>(r)];
        const std::size_t grain = l.grains[static_cast<std::size_t>(r)];
        if (cnt == 0) {
          EXPECT_TRUE(delivered[r].empty()) << "rank " << r;
          continue;
        }
        ASSERT_FALSE(delivered[r].empty()) << "rank " << r;
        std::size_t expect = displ;
        for (const ChunkDelivery& d : delivered[r]) {
          EXPECT_EQ(d.offset, expect) << "rank " << r << " chunk=" << chunk;
          EXPECT_GT(d.bytes, 0u);
          EXPECT_EQ((d.offset - displ) % grain, 0u)
              << "rank " << r << " chunk=" << chunk;
          expect = d.offset + d.bytes;
        }
        EXPECT_EQ(expect, displ + cnt) << "rank " << r << " chunk=" << chunk;
      }
      delivered.clear();
    }
  });
}

TEST(ChunkedAllgatherv, RecursiveDoublingFallsBackToWholeSegments) {
  const int ranks = 4;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    const Layout l = make_layout(ranks, 0xB22ull, 8);
    std::vector<char> mine(l.counts[static_cast<std::size_t>(me)]);
    for (std::size_t i = 0; i < mine.size(); ++i) mine[i] = byte_at(me, i);
    std::vector<char> out(l.total, -1);
    std::map<int, std::size_t> bytes_seen;
    allgatherv_chunked(comm, mine.data(), l.counts, l.displs, out.data(), 4,
                       l.grains,
                       [&](const ChunkDelivery& d) {
                         bytes_seen[d.rank] += d.bytes;
                       },
                       AllgatherAlgo::RecursiveDoubling);
    for (int r = 0; r < ranks; ++r) {
      EXPECT_EQ(bytes_seen[r], l.counts[static_cast<std::size_t>(r)])
          << "rank " << r;
      for (std::size_t k = 0; k < l.counts[static_cast<std::size_t>(r)]; ++k)
        ASSERT_EQ(out[l.displs[static_cast<std::size_t>(r)] + k],
                  byte_at(r, k));
    }
  });
}

TEST(ChunkedAllgatherv, InPlaceSendSkipsLocalCopy) {
  const int ranks = 3;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    const Layout l = make_layout(ranks, 0xC33ull, 8);
    std::vector<char> buf(l.total, -1);
    char* seg = buf.data() + l.displs[static_cast<std::size_t>(me)];
    for (std::size_t i = 0; i < l.counts[static_cast<std::size_t>(me)]; ++i)
      seg[i] = byte_at(me, i);
    bool own_delivered = false;
    allgatherv_chunked(comm, seg, l.counts, l.displs, buf.data(), 32,
                       l.grains, [&](const ChunkDelivery& d) {
                         if (d.rank == me) own_delivered = true;
                       });
    EXPECT_TRUE(own_delivered ||
                l.counts[static_cast<std::size_t>(me)] == 0);
    for (int r = 0; r < ranks; ++r)
      for (std::size_t k = 0; k < l.counts[static_cast<std::size_t>(r)]; ++k)
        ASSERT_EQ(buf[l.displs[static_cast<std::size_t>(r)] + k],
                  byte_at(r, k));
  });
}

TEST(ChunkedStress, ManyConcurrentCommunicatorsAgree) {
  // The driver runs one chunked allgatherv per process column while row
  // broadcasts ride the same transport: split the world into columns and
  // run many rounds of chunked traffic on every column at once, with
  // round-varying chunk sizes, checking assembly each time.
  const int p = 3, q = 2;
  World::run(p * q, [&](Communicator& world) {
    Communicator col = world.split(world.rank() % q, world.rank() / q);
    const int me = col.rank();
    for (int round = 0; round < 25; ++round) {
      const Layout l =
          make_layout(col.size(),
                      0xD44ull + static_cast<std::uint64_t>(round) * 131u +
                          static_cast<std::uint64_t>(world.rank() % q),
                      8);
      std::vector<char> mine(l.counts[static_cast<std::size_t>(me)]);
      for (std::size_t i = 0; i < mine.size(); ++i)
        mine[i] = byte_at(me, i);
      std::vector<char> out(l.total, -1);
      const std::size_t chunk = static_cast<std::size_t>(1 + (round % 5) * 17);
      std::size_t delivered_bytes = 0;
      allgatherv_chunked(col, mine.data(), l.counts, l.displs, out.data(),
                         chunk, l.grains, [&](const ChunkDelivery& d) {
                           delivered_bytes += d.bytes;
                         });
      ASSERT_EQ(delivered_bytes, l.total) << "round " << round;
      for (int r = 0; r < col.size(); ++r)
        for (std::size_t k = 0; k < l.counts[static_cast<std::size_t>(r)]; ++k)
          ASSERT_EQ(out[l.displs[static_cast<std::size_t>(r)] + k],
                    byte_at(r, k))
              << "round " << round << " rank " << r;
    }
  });
}

}  // namespace
}  // namespace hplx::comm
