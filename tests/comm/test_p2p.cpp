#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "comm/world.hpp"
#include "util/error.hpp"

namespace hplx::comm {
namespace {

TEST(P2P, PingPong) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const double v = 3.5;
      comm.send(&v, 1, 1, 7);
      double back = 0.0;
      comm.recv(&back, 1, 1, 8);
      EXPECT_DOUBLE_EQ(back, 7.0);
    } else {
      double v = 0.0;
      comm.recv(&v, 1, 0, 7);
      const double twice = v * 2;
      comm.send(&twice, 1, 0, 8);
    }
  });
}

TEST(P2P, TagsDemultiplex) {
  // Two messages with different tags, received in the opposite order of
  // sending: matching must be by tag, not arrival order.
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int a = 1, b = 2;
      comm.send(&a, 1, 1, 100);
      comm.send(&b, 1, 1, 200);
    } else {
      int b = 0, a = 0;
      comm.recv(&b, 1, 0, 200);
      comm.recv(&a, 1, 0, 100);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(P2P, FifoPerSourceAndTag) {
  World::run(2, [](Communicator& comm) {
    const int count = 50;
    if (comm.rank() == 0) {
      for (int i = 0; i < count; ++i) comm.send(&i, 1, 1, 5);
    } else {
      for (int i = 0; i < count; ++i) {
        int v = -1;
        comm.recv(&v, 1, 0, 5);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2P, AnySource) {
  World::run(3, [](Communicator& comm) {
    if (comm.rank() == 0) {
      int seen = 0;
      for (int k = 0; k < 2; ++k) {
        int v = 0;
        comm.recv_bytes(&v, sizeof(int), kAnySource, 9);
        seen += v;
      }
      EXPECT_EQ(seen, 1 + 2);
    } else {
      const int v = comm.rank();
      comm.send(&v, 1, 0, 9);
    }
  });
}

TEST(P2P, ZeroByteMessage) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_bytes(nullptr, 0, 1, 3);
    } else {
      comm.recv_bytes(nullptr, 0, 0, 3);
    }
  });
}

TEST(P2P, LargePayloadIntegrity) {
  World::run(2, [](Communicator& comm) {
    const std::size_t n = 1 << 16;
    if (comm.rank() == 0) {
      std::vector<double> data(n);
      std::iota(data.begin(), data.end(), 0.0);
      comm.send(data.data(), n, 1, 1);
    } else {
      std::vector<double> data(n, -1.0);
      comm.recv(data.data(), n, 0, 1);
      for (std::size_t i = 0; i < n; i += 997)
        ASSERT_DOUBLE_EQ(data[i], static_cast<double>(i));
    }
  });
}

TEST(P2P, SizeMismatchThrows) {
  EXPECT_THROW(World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const int v = 1;
      comm.send(&v, 1, 1, 0);
    } else {
      double wrong[2];
      comm.recv(wrong, 2, 0, 0);
    }
  }), Error);
}

TEST(P2P, IrecvCompletesAtWait) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      int v = 0;
      Request r = comm.irecv(&v, 1, 1, 4);
      r.wait();
      EXPECT_EQ(v, 77);
    } else {
      const int v = 77;
      Request r = comm.isend(&v, 1, 0, 4);
      r.wait();
    }
  });
}

TEST(P2P, SendRecvSimultaneousExchange) {
  World::run(2, [](Communicator& comm) {
    const int mine = comm.rank() + 10;
    int theirs = -1;
    const int other = 1 - comm.rank();
    comm.sendrecv(&mine, 1, other, 2, &theirs, 1, other, 2);
    EXPECT_EQ(theirs, other + 10);
  });
}

TEST(P2P, SelfSend) {
  World::run(1, [](Communicator& comm) {
    const long v = 42;
    comm.send(&v, 1, 0, 0);
    long got = 0;
    comm.recv(&got, 1, 0, 0);
    EXPECT_EQ(got, 42);
  });
}

TEST(P2P, IprobeSeesPendingMessageWithoutConsuming) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      const double v = 2.5;
      comm.send(&v, 1, 1, 6);
    } else {
      // Poll until the message lands (HPL's progress-engine pattern).
      std::size_t bytes = 0;
      while (!comm.iprobe(0, 6, &bytes)) {
      }
      EXPECT_EQ(bytes, sizeof(double));
      // Probe must not consume: probing again still matches.
      EXPECT_TRUE(comm.iprobe(0, 6));
      double v = 0.0;
      comm.recv(&v, 1, 0, 6);
      EXPECT_DOUBLE_EQ(v, 2.5);
      EXPECT_FALSE(comm.iprobe(0, 6));
    }
  });
}

TEST(P2P, IprobeIsTagAndSourceSelective) {
  World::run(3, [](Communicator& comm) {
    if (comm.rank() == 1) {
      const int v = 1;
      comm.send(&v, 1, 0, 10);
    } else if (comm.rank() == 0) {
      std::size_t bytes = 0;
      while (!comm.iprobe(1, 10, &bytes)) {
      }
      EXPECT_FALSE(comm.iprobe(2, 10));  // wrong source
      EXPECT_FALSE(comm.iprobe(1, 11));  // wrong tag
      EXPECT_TRUE(comm.iprobe(kAnySource, 10));
      int v = 0;
      comm.recv(&v, 1, 1, 10);
    }
  });
}

TEST(P2P, TryRecvOnlyWhenAvailable) {
  World::run(2, [](Communicator& comm) {
    if (comm.rank() == 0) {
      long v = 99;
      EXPECT_FALSE(comm.try_recv_bytes(&v, sizeof(long), 1, 12));
      comm.send(&v, 1, 1, 11);  // unblock the peer
      while (!comm.try_recv_bytes(&v, sizeof(long), 1, 12)) {
      }
      EXPECT_EQ(v, 1234);
    } else {
      long v = 0;
      comm.recv(&v, 1, 0, 11);
      const long out = 1234;
      comm.send(&out, 1, 0, 12);
    }
  });
}

TEST(P2P, UserTagRangeEnforced) {
  EXPECT_THROW(World::run(1, [](Communicator& comm) {
    const int v = 0;
    comm.send(&v, 1, 0, kMaxUserTag);
  }), Error);
}

}  // namespace
}  // namespace hplx::comm
