/// Randomized stress of the minimpi substrate: many ranks exchanging
/// messages with pseudo-random sizes, tags and orders, plus interleaved
/// collectives — the kind of traffic one full HPL iteration generates,
/// compressed. Deterministic seeds keep failures reproducible.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

std::uint64_t mix(std::uint64_t s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

TEST(CommStress, RandomAllToAllTraffic) {
  const int ranks = 6;
  const int rounds = 40;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    // Every rank sends one message to every other rank per round, with a
    // size derived from (round, src, dst); everyone can predict every
    // size, so receives can be posted in arbitrary order.
    auto size_of = [](int round, int src, int dst) {
      std::uint64_t s = mix(0x9E3779B97F4A7C15ull + round * 1315423911u +
                            src * 2654435761u + dst * 40503u);
      return static_cast<std::size_t>(s % 2048);
    };
    for (int round = 0; round < rounds; ++round) {
      for (int dst = 0; dst < ranks; ++dst) {
        if (dst == me) continue;
        const std::size_t bytes = size_of(round, me, dst);
        std::vector<char> buf(bytes, static_cast<char>(me + round));
        comm.send_bytes(buf.data(), bytes, dst, round);
      }
      // Receive from ranks in reverse order to exercise matching.
      for (int src = ranks - 1; src >= 0; --src) {
        if (src == me) continue;
        const std::size_t bytes = size_of(round, src, me);
        std::vector<char> buf(bytes, 0);
        comm.recv_bytes(buf.data(), bytes, src, round);
        for (char c : buf)
          ASSERT_EQ(c, static_cast<char>(src + round));
      }
    }
  });
}

TEST(CommStress, CollectivesInterleavedWithP2p) {
  const int ranks = 5;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    for (int round = 0; round < 15; ++round) {
      // P2p ring message.
      const long token = me * 100 + round;
      comm.send(&token, 1, (me + 1) % ranks, 9);
      long got = 0;
      comm.recv(&got, 1, (me + ranks - 1) % ranks, 9);
      EXPECT_EQ(got, ((me + ranks - 1) % ranks) * 100 + round);

      // Collective with the same pending traffic pattern.
      long sum = me;
      allreduce(comm, &sum, 1, ReduceOp::Sum);
      EXPECT_EQ(sum, ranks * (ranks - 1) / 2);

      double v = (me == round % ranks) ? 3.5 + round : 0.0;
      bcast(comm, &v, 1, round % ranks,
            round % 2 ? BcastAlgo::Long : BcastAlgo::Ring2Mod);
      EXPECT_DOUBLE_EQ(v, 3.5 + round);
    }
  });
}

TEST(CommStress, ManyOutstandingIrecvs) {
  World::run(2, [](Communicator& comm) {
    const int count = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < count; ++i) {
        const long v = i * 7;
        comm.send(&v, 1, 1, i);
      }
    } else {
      std::vector<long> got(count, -1);
      std::vector<Request> reqs;
      // Post in reverse tag order.
      for (int i = count - 1; i >= 0; --i)
        reqs.push_back(comm.irecv(&got[static_cast<std::size_t>(i)], 1, 0, i));
      Communicator::waitall(reqs);
      for (int i = 0; i < count; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i * 7);
    }
  });
}

}  // namespace
}  // namespace hplx::comm
