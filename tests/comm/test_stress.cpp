/// Randomized stress of the minimpi substrate: many ranks exchanging
/// messages with pseudo-random sizes, tags and orders, plus interleaved
/// collectives — the kind of traffic one full HPL iteration generates,
/// compressed. Deterministic seeds keep failures reproducible.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

std::uint64_t mix(std::uint64_t s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

TEST(CommStress, RandomAllToAllTraffic) {
  const int ranks = 6;
  const int rounds = 40;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    // Every rank sends one message to every other rank per round, with a
    // size derived from (round, src, dst); everyone can predict every
    // size, so receives can be posted in arbitrary order.
    auto size_of = [](int round, int src, int dst) {
      std::uint64_t s = mix(0x9E3779B97F4A7C15ull + round * 1315423911u +
                            src * 2654435761u + dst * 40503u);
      return static_cast<std::size_t>(s % 2048);
    };
    for (int round = 0; round < rounds; ++round) {
      for (int dst = 0; dst < ranks; ++dst) {
        if (dst == me) continue;
        const std::size_t bytes = size_of(round, me, dst);
        std::vector<char> buf(bytes, static_cast<char>(me + round));
        comm.send_bytes(buf.data(), bytes, dst, round);
      }
      // Receive from ranks in reverse order to exercise matching.
      for (int src = ranks - 1; src >= 0; --src) {
        if (src == me) continue;
        const std::size_t bytes = size_of(round, src, me);
        std::vector<char> buf(bytes, 0);
        comm.recv_bytes(buf.data(), bytes, src, round);
        for (char c : buf)
          ASSERT_EQ(c, static_cast<char>(src + round));
      }
    }
  });
}

TEST(CommStress, CollectivesInterleavedWithP2p) {
  const int ranks = 5;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    for (int round = 0; round < 15; ++round) {
      // P2p ring message.
      const long token = me * 100 + round;
      comm.send(&token, 1, (me + 1) % ranks, 9);
      long got = 0;
      comm.recv(&got, 1, (me + ranks - 1) % ranks, 9);
      EXPECT_EQ(got, ((me + ranks - 1) % ranks) * 100 + round);

      // Collective with the same pending traffic pattern.
      long sum = me;
      allreduce(comm, &sum, 1, ReduceOp::Sum);
      EXPECT_EQ(sum, ranks * (ranks - 1) / 2);

      double v = (me == round % ranks) ? 3.5 + round : 0.0;
      bcast(comm, &v, 1, round % ranks,
            round % 2 ? BcastAlgo::Long : BcastAlgo::Ring2Mod);
      EXPECT_DOUBLE_EQ(v, 3.5 + round);
    }
  });
}

TEST(CommStress, ManyOutstandingIrecvs) {
  World::run(2, [](Communicator& comm) {
    const int count = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < count; ++i) {
        const long v = i * 7;
        comm.send(&v, 1, 1, i);
      }
    } else {
      std::vector<long> got(count, -1);
      std::vector<Request> reqs;
      // Post in reverse tag order.
      for (int i = count - 1; i >= 0; --i)
        reqs.push_back(comm.irecv(&got[static_cast<std::size_t>(i)], 1, 0, i));
      Communicator::waitall(reqs);
      for (int i = 0; i < count; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i * 7);
    }
  });
}

// ------------------------------------------------------------ buffer pool

TEST(BufferPool, ReusesFreedBuffersAcrossSizeClasses) {
  BufferPool pool;
  // First acquisition of each class is a miss; after release, the same
  // class must be served from the freelist.
  for (std::size_t bytes : {1ul, 256ul, 257ul, 4096ul, 100000ul}) {
    { PoolBuffer b = pool.acquire(bytes); ASSERT_NE(b.data(), nullptr); }
    { PoolBuffer b = pool.acquire(bytes); ASSERT_NE(b.data(), nullptr); }
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 10u);
  EXPECT_EQ(s.outstanding, 0u);
  // 1 and 256 share the 256 B class, so the second group's first acquire
  // hits too: 5 second-acquires + 1 shared-class hit.
  EXPECT_EQ(s.hits, 6u);
  EXPECT_GT(s.cached_bytes, 0u);
  EXPECT_GT(s.hit_rate(), 0.5);
}

TEST(BufferPool, OversizeFallsBackToDirectAllocation) {
  BufferPool pool;
  const std::size_t huge = (1ull << 24) + 1;
  {
    PoolBuffer b = pool.acquire(huge);
    ASSERT_NE(b.data(), nullptr);
    EXPECT_EQ(b.size(), huge);
    EXPECT_EQ(pool.stats().outstanding, 1u);
  }
  const auto s = pool.stats();
  EXPECT_EQ(s.oversize, 1u);
  EXPECT_EQ(s.outstanding, 0u);
  EXPECT_EQ(s.cached_bytes, 0u);  // oversize buffers are freed, not cached
}

TEST(BufferPool, ZeroByteAcquireNeverTouchesThePool) {
  BufferPool pool;
  PoolBuffer b = pool.acquire(0);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(pool.stats().acquires, 0u);
}

TEST(CommStress, PoolRecyclesUnderSteadyTraffic) {
  // After a warm-up round, steady-state p2p traffic should be served
  // almost entirely from the freelists — that is the pool's whole point.
  const int ranks = 4;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    for (int round = 0; round < 30; ++round) {
      for (int dst = 0; dst < ranks; ++dst) {
        if (dst == me) continue;
        std::vector<char> buf(512 + 64 * dst, static_cast<char>(round));
        comm.send_bytes(buf.data(), buf.size(), dst, round);
      }
      for (int src = 0; src < ranks; ++src) {
        if (src == me) continue;
        std::vector<char> buf(512 + 64 * me);
        comm.recv_bytes(buf.data(), buf.size(), src, round);
        for (char c : buf) ASSERT_EQ(c, static_cast<char>(round));
      }
    }
    barrier(comm);
    if (me == 0) {
      const auto s = comm.fabric().pool_stats();
      EXPECT_GT(s.acquires, 0u);
      EXPECT_GT(s.hit_rate(), 0.8) << "acquires=" << s.acquires
                                   << " hits=" << s.hits;
    }
  });
}

TEST(CommStress, LargeMessagesBypassTheEagerCopy) {
  // A receive posted before a large send arrives must be filled directly
  // (single copy), visible as a direct-delivery count on the fabric.
  World::run(2, [](Communicator& comm) {
    const std::size_t big = comm.fabric().direct_threshold() * 2;
    std::vector<char> buf(big);
    if (comm.rank() == 0) {
      char ack = 0;
      comm.recv(&ack, 1, 1, 1);
      // Give the receiver time to post its blocking receive; correctness
      // does not depend on winning this race, only the stat check does,
      // and the final barrier keeps the check well ordered.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      for (std::size_t i = 0; i < big; ++i)
        buf[i] = static_cast<char>(i * 31 + 7);
      comm.send_bytes(buf.data(), big, 1, 2);
    } else {
      char ack = 1;
      comm.send(&ack, 1, 0, 1);
      comm.recv_bytes(buf.data(), big, 0, 2);
      for (std::size_t i = 0; i < big; ++i)
        ASSERT_EQ(buf[i], static_cast<char>(i * 31 + 7));
    }
    barrier(comm);
    if (comm.rank() == 0)
      EXPECT_GE(comm.fabric().direct_deliveries(), 1u);
  });
}

TEST(CommStress, LargeMessageCyclesCannotDeadlock) {
  // Every rank sends a larger-than-threshold message around a ring before
  // receiving: with blocking-rendezvous semantics this cycle would hang;
  // the eager fallback must absorb it.
  const int ranks = 4;
  World::run(ranks, [&](Communicator& comm) {
    const int me = comm.rank();
    const std::size_t big = comm.fabric().direct_threshold() + 1024;
    for (int round = 0; round < 5; ++round) {
      std::vector<char> out(big, static_cast<char>(me + round));
      std::vector<char> in(big);
      comm.send_bytes(out.data(), big, (me + 1) % ranks, round);
      comm.recv_bytes(in.data(), big, (me + ranks - 1) % ranks, round);
      for (char c : in)
        ASSERT_EQ(c, static_cast<char>((me + ranks - 1) % ranks + round));
    }
  });
}

TEST(CommStress, ThresholdZeroForcesDirectWhereverPossible) {
  World::run(2, [](Communicator& comm) {
    comm.fabric().set_direct_threshold(0);
    const int me = comm.rank();
    for (int round = 0; round < 20; ++round) {
      std::vector<double> buf(64, me * 1.5 + round);
      if (me == 0) {
        comm.send(buf.data(), buf.size(), 1, round);
        comm.recv(buf.data(), buf.size(), 1, round);
        for (double v : buf) ASSERT_EQ(v, 1.5 + round);
      } else {
        std::vector<double> got(64);
        comm.recv(got.data(), got.size(), 0, round);
        for (double v : got) ASSERT_EQ(v, 0.0 + round);
        comm.send(buf.data(), buf.size(), 0, round);
      }
    }
  });
}

}  // namespace
}  // namespace hplx::comm
