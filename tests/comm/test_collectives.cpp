#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

TEST(Barrier, AllRanksPass) {
  for (int n : {1, 2, 3, 5, 8}) {
    std::atomic<int> before{0};
    World::run(n, [&](Communicator& comm) {
      before++;
      barrier(comm);
      // After the barrier every rank must have incremented.
      EXPECT_EQ(before.load(), n);
    });
  }
}

TEST(Allreduce, SumOverRanks) {
  World::run(5, [](Communicator& comm) {
    std::vector<long> v{static_cast<long>(comm.rank()), 1};
    allreduce(comm, v.data(), 2, ReduceOp::Sum);
    EXPECT_EQ(v[0], 0 + 1 + 2 + 3 + 4);
    EXPECT_EQ(v[1], 5);
  });
}

TEST(Allreduce, MaxAndMin) {
  World::run(7, [](Communicator& comm) {
    double mx = static_cast<double>(comm.rank());
    double mn = static_cast<double>(comm.rank());
    allreduce(comm, &mx, 1, ReduceOp::Max);
    allreduce(comm, &mn, 1, ReduceOp::Min);
    EXPECT_DOUBLE_EQ(mx, 6.0);
    EXPECT_DOUBLE_EQ(mn, 0.0);
  });
}

TEST(Allreduce, CustomMaxLocCombine) {
  // The pivot-search pattern: (value, owner) pairs, keep the largest value.
  struct Pair {
    double value;
    int owner;
  };
  World::run(6, [](Communicator& comm) {
    // Values peak at rank 4.
    Pair p{comm.rank() == 4 ? 100.0 : static_cast<double>(comm.rank()),
           comm.rank()};
    allreduce_bytes(comm, &p, sizeof(Pair), [](void* inout, const void* in) {
      auto* a = static_cast<Pair*>(inout);
      const auto* b = static_cast<const Pair*>(in);
      if (b->value > a->value) *a = *b;
    });
    EXPECT_DOUBLE_EQ(p.value, 100.0);
    EXPECT_EQ(p.owner, 4);
  });
}

TEST(Allreduce, SingleRankIdentity) {
  World::run(1, [](Communicator& comm) {
    double v = 3.0;
    allreduce(comm, &v, 1, ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(v, 3.0);
  });
}

TEST(Scatterv, UnequalSegments) {
  World::run(4, [](Communicator& comm) {
    // Rank i receives i+1 ints: {0}, {1,2}, {3,4,5}, ...
    std::vector<std::size_t> counts;
    for (int i = 0; i < 4; ++i) counts.push_back((i + 1) * sizeof(int));
    std::vector<int> send;
    if (comm.rank() == 2) {  // non-zero root
      send.resize(10);
      std::iota(send.begin(), send.end(), 0);
    }
    std::vector<int> recv(static_cast<std::size_t>(comm.rank() + 1), -1);
    scatterv_bytes(comm, send.data(), counts, recv.data(), 2);
    int expect = comm.rank() * (comm.rank() + 1) / 2;
    for (int k = 0; k <= comm.rank(); ++k)
      EXPECT_EQ(recv[static_cast<std::size_t>(k)], expect + k);
  });
}

TEST(Allgatherv, UnequalSegmentsRing) {
  World::run(5, [](Communicator& comm) {
    const int me = comm.rank();
    // Rank i contributes i+1 doubles, all equal to i.
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int i = 0; i < 5; ++i) {
      counts.push_back(static_cast<std::size_t>(i + 1));
      displs.push_back(total);
      total += counts.back();
    }
    std::vector<double> mine(static_cast<std::size_t>(me + 1),
                             static_cast<double>(me));
    std::vector<double> all(total, -1.0);
    allgatherv(comm, mine.data(), counts, displs, all.data());
    for (int i = 0; i < 5; ++i)
      for (std::size_t k = 0; k < counts[static_cast<std::size_t>(i)]; ++k)
        EXPECT_DOUBLE_EQ(all[displs[static_cast<std::size_t>(i)] + k],
                         static_cast<double>(i));
  });
}

TEST(Allgatherv, ZeroLengthContribution) {
  World::run(3, [](Communicator& comm) {
    // Rank 1 contributes nothing.
    std::vector<std::size_t> counts{2, 0, 1};
    std::vector<std::size_t> displs{0, 2, 2};
    std::vector<double> mine;
    if (comm.rank() == 0) mine = {1.0, 2.0};
    if (comm.rank() == 2) mine = {9.0};
    std::vector<double> all(3, -1.0);
    allgatherv(comm, mine.data(), counts, displs, all.data());
    EXPECT_DOUBLE_EQ(all[0], 1.0);
    EXPECT_DOUBLE_EQ(all[1], 2.0);
    EXPECT_DOUBLE_EQ(all[2], 9.0);
  });
}

TEST(Gather, CollectsInRankOrder) {
  World::run(4, [](Communicator& comm) {
    const double v = 10.0 + comm.rank();
    std::vector<double> all(4, 0.0);
    gather_bytes(comm, &v, sizeof(double), all.data(), 1);
    if (comm.rank() == 1) {
      for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i)], 10.0 + i);
    }
  });
}

TEST(Collectives, BackToBackSameType) {
  // Successive allreduces must not cross-match messages.
  World::run(4, [](Communicator& comm) {
    for (int round = 0; round < 20; ++round) {
      long v = comm.rank() + round;
      allreduce(comm, &v, 1, ReduceOp::Sum);
      EXPECT_EQ(v, 0 + 1 + 2 + 3 + 4 * round);
    }
  });
}

}  // namespace
}  // namespace hplx::comm
