/// Every broadcast variant must deliver identical bytes to every rank, for
/// every root, across communicator sizes — including the sizes where the
/// ring splits degenerate (n = 2, 3) and payloads smaller than the rank
/// count (the Long scatter fallback).

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

using Param = std::tuple<BcastAlgo, int /*nranks*/, int /*root*/,
                         std::size_t /*payload doubles*/>;

class BcastSweep : public ::testing::TestWithParam<Param> {};

TEST_P(BcastSweep, AllRanksReceiveRootData) {
  const auto [algo, nranks, root, count] = GetParam();
  if (root >= nranks) GTEST_SKIP();
  World::run(nranks, [&, algo = algo, root = root, count = count](Communicator& comm) {
    std::vector<double> buf(count, -1.0);
    if (comm.rank() == root) {
      for (std::size_t i = 0; i < count; ++i)
        buf[i] = static_cast<double>(i) * 0.5 + root;
    }
    bcast(comm, buf.data(), count, root, algo);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_DOUBLE_EQ(buf[i], static_cast<double>(i) * 0.5 + root)
          << "rank " << comm.rank() << " index " << i;
  });
}

std::string bcast_param_name(const ::testing::TestParamInfo<Param>& info) {
  const BcastAlgo algo = std::get<0>(info.param);
  std::string name = to_string(algo);
  name += "_n" + std::to_string(std::get<1>(info.param)) + "_r" +
          std::to_string(std::get<2>(info.param)) + "_c" +
          std::to_string(std::get<3>(info.param));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AlgosByShape, BcastSweep,
    ::testing::Combine(
        ::testing::Values(BcastAlgo::Binomial, BcastAlgo::Ring1,
                          BcastAlgo::Ring1Mod, BcastAlgo::Ring2,
                          BcastAlgo::Ring2Mod, BcastAlgo::Long,
                          BcastAlgo::LongMod),
        ::testing::Values(1, 2, 3, 4, 7, 8),
        ::testing::Values(0, 1, 3),
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{1000})),
    bcast_param_name);

TEST(Bcast, TinyPayloadWithLongAlgo) {
  // Payload of 3 bytes over 5 ranks: must take the chain fallback.
  World::run(5, [](Communicator& comm) {
    char data[3] = {0, 0, 0};
    if (comm.rank() == 0) {
      data[0] = 'a';
      data[1] = 'b';
      data[2] = 'c';
    }
    bcast_bytes(comm, data, 3, 0, BcastAlgo::Long);
    EXPECT_EQ(data[0], 'a');
    EXPECT_EQ(data[2], 'c');
  });
}

TEST(Bcast, SequentialBroadcastsKeepOrder) {
  World::run(4, [](Communicator& comm) {
    for (int round = 0; round < 10; ++round) {
      int v = (comm.rank() == round % 4) ? round * 11 : -1;
      bcast(comm, &v, 1, round % 4, BcastAlgo::Ring1Mod);
      EXPECT_EQ(v, round * 11);
    }
  });
}

class TwoLevelSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(TwoLevelSweep, DeliversToEveryRank) {
  const auto [nranks, per_node, root] = GetParam();
  if (root >= nranks) GTEST_SKIP();
  World::run(nranks, [&, per_node = per_node, root = root](Communicator& comm) {
    std::vector<double> buf(257, -1.0);
    if (comm.rank() == root)
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<double>(i) + root;
    bcast_two_level(comm, buf.data(), buf.size() * sizeof(double), root,
                    per_node);
    for (std::size_t i = 0; i < buf.size(); ++i)
      ASSERT_DOUBLE_EQ(buf[i], static_cast<double>(i) + root)
          << "rank " << comm.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TwoLevelSweep,
    ::testing::Values(std::make_tuple(8, 2, 0), std::make_tuple(8, 4, 3),
                      std::make_tuple(8, 8, 5), std::make_tuple(6, 4, 1),
                      std::make_tuple(7, 3, 6), std::make_tuple(1, 2, 0),
                      std::make_tuple(9, 3, 4)));

TEST(BcastAlgoNames, Unique) {
  EXPECT_STREQ(to_string(BcastAlgo::Binomial), "binomial");
  EXPECT_STREQ(to_string(BcastAlgo::Long), "blong");
  EXPECT_STREQ(to_string(BcastAlgo::Ring2Mod), "2ringM");
}

}  // namespace
}  // namespace hplx::comm
