/// Both allgatherv algorithms must produce identical results; recursive
/// doubling additionally requires packed displacements and a power-of-two
/// size (falling back to the ring otherwise, transparently).

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "comm/collectives.hpp"
#include "comm/world.hpp"

namespace hplx::comm {
namespace {

using Param = std::tuple<AllgatherAlgo, int /*ranks*/, int /*base size*/>;

class AllgatherSweep : public ::testing::TestWithParam<Param> {};

TEST_P(AllgatherSweep, SegmentsAssembleInRankOrder) {
  const auto [algo, ranks, base] = GetParam();
  World::run(ranks, [&, algo = algo, base = base](Communicator& comm) {
    const int me = comm.rank();
    // Rank i contributes base + i doubles, value 100 + i.
    std::vector<std::size_t> counts, displs;
    std::size_t total = 0;
    for (int i = 0; i < comm.size(); ++i) {
      counts.push_back((static_cast<std::size_t>(base) + static_cast<std::size_t>(i)) * sizeof(double));
      displs.push_back(total);
      total += counts.back();
    }
    std::vector<double> mine(static_cast<std::size_t>(base + me),
                             100.0 + me);
    std::vector<double> all(total / sizeof(double), -1.0);
    allgatherv_bytes(comm, mine.data(), counts, displs, all.data(), algo);
    std::size_t off = 0;
    for (int i = 0; i < comm.size(); ++i) {
      for (int k = 0; k < base + i; ++k)
        ASSERT_DOUBLE_EQ(all[off + static_cast<std::size_t>(k)], 100.0 + i)
            << "rank " << me << " segment " << i;
      off += static_cast<std::size_t>(base + i);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AlgosAndShapes, AllgatherSweep,
    ::testing::Values(
        Param{AllgatherAlgo::Ring, 1, 3}, Param{AllgatherAlgo::Ring, 3, 5},
        Param{AllgatherAlgo::Ring, 8, 2},
        Param{AllgatherAlgo::RecursiveDoubling, 1, 3},
        Param{AllgatherAlgo::RecursiveDoubling, 2, 4},
        Param{AllgatherAlgo::RecursiveDoubling, 4, 1},
        Param{AllgatherAlgo::RecursiveDoubling, 8, 3},
        // Non-power-of-two: must fall back to ring and still be correct.
        Param{AllgatherAlgo::RecursiveDoubling, 6, 2}));

TEST(AllgatherRd, ZeroLengthSegments) {
  World::run(4, [](Communicator& comm) {
    // Rank 2 contributes nothing.
    std::vector<std::size_t> counts{8, 8, 0, 8};
    std::vector<std::size_t> displs{0, 8, 16, 16};
    double mine = static_cast<double>(comm.rank());
    std::vector<double> all(3, -1.0);
    allgatherv_bytes(comm, comm.rank() == 2 ? nullptr : &mine, counts,
                     displs, all.data(), AllgatherAlgo::RecursiveDoubling);
    EXPECT_DOUBLE_EQ(all[0], 0.0);
    EXPECT_DOUBLE_EQ(all[1], 1.0);
    EXPECT_DOUBLE_EQ(all[2], 3.0);
  });
}

TEST(AllgatherRd, UnpackedDisplsFallBackToRing) {
  // Gapped displacements are legal for the ring; recursive doubling must
  // detect them and still produce the right answer.
  World::run(4, [](Communicator& comm) {
    std::vector<std::size_t> counts{8, 8, 8, 8};
    std::vector<std::size_t> displs{0, 16, 32, 48};  // 8-byte holes
    double mine = 10.0 + comm.rank();
    std::vector<double> all(7, -1.0);
    allgatherv_bytes(comm, &mine, counts, displs, all.data(),
                     AllgatherAlgo::RecursiveDoubling);
    for (int i = 0; i < 4; ++i)
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(2 * i)], 10.0 + i);
  });
}

}  // namespace
}  // namespace hplx::comm
